"""Tests for the HTTP/JSON service tier (``repro.serve.http``) and the
per-tenant quota admission underneath it: wire round trips, the error
mapping (400/401/404/429/503/504), ticket lifecycle, graceful drain,
and the ``tools/serve_daemon.py`` SIGTERM contract."""

import base64
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest
from conftest import GatedExplainer, StubExplainer

from repro.serve import (ExplainEngine, RequestContext, TenantOverQuota,
                         ThreadedExecutor, demo_spec)
from repro.serve.http import (ApiKey, ServiceConfig, decode_array,
                              encode_array, serve)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _img(i: int, side: int = 4) -> np.ndarray:
    return np.full((1, side, side), float(i), dtype=np.float32)


def _noise(rng, side: int = 4) -> np.ndarray:
    return rng.standard_normal((1, side, side)).astype(np.float32)


# ----------------------------------------------------------------------
# Engine layer: per-tenant quota admission
# ----------------------------------------------------------------------
class TestTenantQuota:
    def _engine(self, **kw):
        kw.setdefault("executor", "serial")
        kw.setdefault("max_batch", 64)
        return ExplainEngine(None, {"stub": StubExplainer()}, **kw)

    def test_over_quota_rejects_while_others_served(self):
        engine = self._engine(tenant_quota=2)
        with engine:
            a1 = engine.submit_async(_img(0), 0, "stub", ctx=RequestContext(tenant="acme"))
            a2 = engine.submit_async(_img(1), 0, "stub", ctx=RequestContext(tenant="acme"))
            with pytest.raises(TenantOverQuota) as err:
                engine.submit_async(_img(2), 0, "stub", ctx=RequestContext(tenant="acme"))
            assert err.value.tenant == "acme"
            assert err.value.quota == 2
            assert err.value.retry_after_s > 0
            # Global capacity remains: another tenant sails in.
            b1 = engine.submit_async(_img(3), 0, "stub", ctx=RequestContext(tenant="globex"))
            engine.drain()
            for h in (a1, a2, b1):
                assert h.result().label == 0
            stats = engine.stats()
            assert stats["quota_rejected"] == 1
            assert stats["tenants"]["acme"]["quota_rejected"] == 1
            assert stats["tenants"]["globex"]["served"] == 1

    def test_completion_releases_the_slice(self):
        engine = self._engine(tenant_quota=1)
        with engine:
            engine.submit_async(_img(0), 0, "stub", ctx=RequestContext(tenant="acme"))
            with pytest.raises(TenantOverQuota):
                engine.submit_async(_img(1), 0, "stub", ctx=RequestContext(tenant="acme"))
            engine.drain()
            # Slot released: the same tenant is admitted again.
            engine.submit_async(_img(2), 0, "stub", ctx=RequestContext(tenant="acme"))
            engine.drain()
            assert engine.stats()["tenants"]["acme"]["served"] == 2

    def test_dedup_attach_is_exempt(self):
        engine = self._engine(tenant_quota=1)
        with engine:
            engine.submit_async(_img(0), 0, "stub", ctx=RequestContext(tenant="acme"))
            # Identical request: attaches to the queued one, no new
            # unique work, so the quota does not reject it.
            h = engine.submit_async(_img(0), 0, "stub", ctx=RequestContext(tenant="acme"))
            engine.drain()
            assert h.result().label == 0

    def test_sync_path_is_charged_too(self):
        engine = self._engine(tenant_quota=1)
        with engine:
            engine.submit_async(_img(0), 0, "stub", ctx=RequestContext(tenant="acme"))
            # Unlike the async-only global `counted` slot, the quota
            # bounds sync ingestion as well.
            with pytest.raises(TenantOverQuota):
                engine.submit(_img(1), 0, "stub", ctx=RequestContext(tenant="acme"))
            engine.drain()

    def test_anonymous_tenant_never_quotad(self):
        engine = self._engine(tenant_quota=1)
        with engine:
            for i in range(4):
                engine.submit_async(_img(i), 0, "stub")
            engine.drain()
            assert engine.stats()["requests_served"] == 4

    def test_per_tenant_override_beats_default(self):
        engine = self._engine(tenant_quota=1,
                              tenant_quotas={"big": 3})
        with engine:
            for i in range(3):
                engine.submit_async(_img(i), 0, "stub", ctx=RequestContext(tenant="big"))
            with pytest.raises(TenantOverQuota):
                engine.submit_async(_img(3), 0, "stub", ctx=RequestContext(tenant="big"))
            engine.drain()

    def test_bad_quota_value_rejected(self):
        with pytest.raises(ValueError):
            self._engine(tenant_quota=0)
        with pytest.raises(ValueError):
            self._engine(tenant_quotas={"t": -1})

    def test_stats_expose_unresolved_held(self):
        engine = self._engine(tenant_quota=4)
        with engine:
            engine.submit_async(_img(0), 0, "stub", ctx=RequestContext(tenant="acme"))
            held = engine.stats()["tenants"]["acme"]["unresolved"]
            assert held == 1
            engine.drain()
            assert "unresolved" not in engine.stats()["tenants"]["acme"]


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_b64_round_trip_bit_exact(self):
        rng = np.random.default_rng(0)
        arr = rng.standard_normal((3, 5, 7)).astype(np.float32)
        out = decode_array(json.loads(json.dumps(encode_array(arr))))
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, arr)

    def test_list_round_trip(self):
        arr = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
        np.testing.assert_array_equal(
            decode_array(encode_array(arr, "list")), arr)
        np.testing.assert_array_equal(decode_array(arr.tolist()), arr)

    def test_malformed_rejects_400(self):
        from repro.serve.http import HttpError
        for bad in ({"shape": [2, 2, 2], "b64": "!!notbase64!!"},
                    {"shape": [9, 9, 9], "b64": base64.b64encode(
                        b"\0" * 16).decode()},
                    {"shape": [2, 2], "data": [[1.0, 2.0], [3.0, 4.0]]},
                    "just a string",
                    [[[np.inf]]]):
            with pytest.raises(HttpError) as err:
                decode_array(bad)
            assert err.value.status == 400


# ----------------------------------------------------------------------
# HTTP round trips against a live loopback daemon
# ----------------------------------------------------------------------
class _Client:
    """Tiny urllib wrapper returning (status, body, headers)."""

    def __init__(self, url, key=None):
        self.url = url
        self.key = key

    def __call__(self, method, path, body=None, key="unset"):
        req = urllib.request.Request(self.url + path, method=method)
        if key == "unset":
            key = self.key
        if key:
            req.add_header("X-API-Key", key)
        data = None
        if body is not None:
            data = json.dumps(body).encode()
            req.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(req, data=data,
                                        timeout=30) as resp:
                return resp.status, json.loads(resp.read()), resp.headers
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read()), err.headers

    def raw_post(self, path, payload: bytes, key="unset"):
        req = urllib.request.Request(self.url + path, method="POST")
        if key == "unset":
            key = self.key
        if key:
            req.add_header("X-API-Key", key)
        try:
            with urllib.request.urlopen(req, data=payload,
                                        timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())


@pytest.fixture()
def stack():
    """Demo engine + live daemon with two keyed tenants (acme quota 2,
    globex unquota'd)."""
    spec = demo_spec(("gradcam", "occlusion", "slow"))
    classifier, explainers = spec.materialize()
    engine = ExplainEngine(classifier, explainers, max_batch=8,
                           max_pending=64, policy="reject",
                           executor=ThreadedExecutor(workers=2))
    daemon = serve(engine, port=0, config=ServiceConfig(
        api_keys={"k-acme": ApiKey("acme", 2), "k-glob": ApiKey("globex")}))
    try:
        yield daemon, _Client(daemon.url, key="k-acme")
    finally:
        daemon.drain()
        daemon.shutdown()
        engine.close()


class TestHttpRoundTrips:
    def test_sync_explain_b64(self, stack):
        daemon, client = stack
        rng = np.random.default_rng(1)
        img = _noise(rng, side=8)
        status, body, _ = client("POST", "/v1/explain",
                                 {"method": "gradcam",
                                  "image": encode_array(img)})
        assert status == 200
        sal = np.frombuffer(base64.b64decode(body["saliency"]["b64"]),
                            dtype="<f4").reshape(body["saliency"]["shape"])
        assert sal.shape == (8, 8)
        assert np.isfinite(sal).all()
        assert body["tenant"] == "acme"
        assert body["cache_hit"] is False
        assert body["latency_ms"] is not None
        # Same image again: served from the saliency cache.
        status, body, _ = client("POST", "/v1/explain",
                                 {"method": "gradcam",
                                  "image": encode_array(img)})
        assert status == 200 and body["cache_hit"] is True

    def test_label_defaults_to_classifier_argmax(self, stack):
        daemon, client = stack
        rng = np.random.default_rng(2)
        img = _noise(rng, side=8)
        status, body, _ = client("POST", "/v1/explain",
                                 {"method": "gradcam",
                                  "image": encode_array(img)})
        assert status == 200
        predicted = int(daemon.engine.classifier.predict(img[None])[0])
        assert body["label"] == predicted

    def test_list_encoding_and_explicit_label(self, stack):
        daemon, client = stack
        img = _img(3, side=8)
        status, body, _ = client(
            "POST", "/v1/explain",
            {"method": "gradcam", "label": 1, "encoding": "list",
             "image": {"shape": [1, 8, 8], "dtype": "float32",
                       "data": img.tolist()}})
        assert status == 200
        assert body["label"] == 1
        assert np.asarray(body["saliency"]["data"]).shape == (8, 8)

    def test_async_ticket_lifecycle(self, stack):
        daemon, client = stack
        rng = np.random.default_rng(3)
        status, body, _ = client("POST", "/v1/explain",
                                 {"method": "gradcam", "mode": "async",
                                  "image": encode_array(_noise(rng, 8))})
        assert status == 202
        ticket = body["ticket"]
        assert body["href"].endswith(ticket)
        deadline = time.monotonic() + 15
        while True:
            status, body, _ = client("GET", f"/v1/tickets/{ticket}")
            if status == 200:
                break
            assert status == 202
            assert time.monotonic() < deadline, "ticket never resolved"
            time.sleep(0.02)
        assert body["saliency"]["shape"] == [8, 8]
        # One-shot delivery: the ticket is retired.
        status, _, _ = client("GET", f"/v1/tickets/{ticket}")
        assert status == 404

    def test_tickets_are_tenant_scoped(self, stack):
        daemon, client = stack
        rng = np.random.default_rng(4)
        status, body, _ = client("POST", "/v1/explain",
                                 {"method": "gradcam", "mode": "async",
                                  "image": encode_array(_noise(rng, 8))})
        assert status == 202
        status, _, _ = client("GET", f"/v1/tickets/{body['ticket']}",
                              key="k-glob")
        assert status == 404

    def test_batch_round_trip(self, stack):
        daemon, client = stack
        rng = np.random.default_rng(5)
        images = [_noise(rng, 8) for _ in range(5)]
        status, body, _ = client(
            "POST", "/v1/batch",
            {"method": "gradcam", "labels": [0, 1, 0, 1, 0],
             "images": [encode_array(i) for i in images]},
            key="k-glob")
        assert status == 200
        assert body["count"] == 5
        assert [r["label"] for r in body["results"]] == [0, 1, 0, 1, 0]

    def test_stats_and_healthz(self, stack):
        daemon, client = stack
        status, body, _ = client("GET", "/healthz", key=None)
        assert status == 200
        assert body["draining"] is False
        assert body["methods"] == ["gradcam", "occlusion", "slow"]
        status, body, _ = client("GET", "/v1/stats")
        assert status == 200
        assert body["engine"]["tenant_quotas"] == {"acme": 2}
        assert body["service"]["auth"] is True


class TestHttpErrorPaths:
    def test_malformed_json_400(self, stack):
        daemon, client = stack
        status, body = client.raw_post("/v1/explain", b"{nope")
        assert status == 400
        assert "malformed JSON" in body["error"]

    def test_non_object_body_400(self, stack):
        daemon, client = stack
        status, body = client.raw_post("/v1/explain", b"[1, 2]")
        assert status == 400

    def test_missing_and_unknown_method(self, stack):
        daemon, client = stack
        img = encode_array(_img(0, 8))
        status, body, _ = client("POST", "/v1/explain", {"image": img})
        assert status == 400
        status, body, _ = client("POST", "/v1/explain",
                                 {"method": "nope", "image": img})
        assert status == 404
        assert "gradcam" in body["error"]

    def test_bad_image_priority_deadline_mode_400(self, stack):
        daemon, client = stack
        img = encode_array(_img(0, 8))
        cases = [
            {"method": "gradcam", "image": "zzz"},
            {"method": "gradcam", "image": img, "priority": "zzz"},
            {"method": "gradcam", "image": img, "deadline_ms": -1},
            {"method": "gradcam", "image": img, "mode": "zzz"},
            {"method": "gradcam", "image": img, "label": "x"},
        ]
        for payload in cases:
            status, _, _ = client("POST", "/v1/explain", payload)
            assert status == 400, payload

    def test_unknown_route_404(self, stack):
        daemon, client = stack
        assert client("GET", "/v1/zzz")[0] == 404
        assert client("POST", "/v2/explain", {})[0] == 404

    def test_unauthenticated_401(self, stack):
        daemon, client = stack
        status, body, headers = client("GET", "/v1/stats", key=None)
        assert status == 401
        assert headers.get("WWW-Authenticate") == "Bearer"
        status, _, _ = client("GET", "/v1/stats", key="wrong")
        assert status == 401
        # healthz stays open.
        assert client("GET", "/healthz", key=None)[0] == 200

    def test_bearer_header_accepted(self, stack):
        daemon, client = stack
        req = urllib.request.Request(daemon.url + "/v1/stats")
        req.add_header("Authorization", "Bearer k-acme")
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.status == 200

    def test_over_quota_429_with_retry_after(self, stack):
        daemon, client = stack
        rng = np.random.default_rng(6)
        codes, retry = [], None
        for _ in range(3):
            status, body, headers = client(
                "POST", "/v1/explain",
                {"method": "slow", "mode": "async",
                 "image": encode_array(_noise(rng, 12))})
            codes.append(status)
            if status == 429:
                retry = headers.get("Retry-After")
                assert "quota" in body["error"]
        assert codes == [202, 202, 429]
        assert retry is not None and int(retry) >= 1
        # The other tenant is still served: global capacity remains.
        status, _, _ = client(
            "POST", "/v1/explain",
            {"method": "slow", "mode": "async",
             "image": encode_array(_noise(rng, 12))}, key="k-glob")
        assert status == 202

    def test_expired_deadline_maps_to_504(self, stack):
        daemon, client = stack
        rng = np.random.default_rng(7)
        status, body, _ = client(
            "POST", "/v1/explain",
            {"method": "occlusion", "mode": "async", "deadline_ms": 0.01,
             "image": encode_array(_noise(rng, 16))})
        assert status == 202
        ticket = body["ticket"]
        deadline = time.monotonic() + 15
        while True:
            status, body, _ = client("GET", f"/v1/tickets/{ticket}")
            if status != 202:
                break
            assert time.monotonic() < deadline
            time.sleep(0.02)
        assert status == 504


class TestDrain:
    def test_drain_rejects_new_work_resolves_tickets(self):
        gated = GatedExplainer()
        engine = ExplainEngine(None, {"gated": gated}, max_batch=4,
                               executor=ThreadedExecutor(workers=1))
        daemon = serve(engine, port=0)
        client = _Client(daemon.url)
        try:
            status, body, _ = client(
                "POST", "/v1/explain",
                {"method": "gated", "mode": "async", "label": 0,
                 "image": encode_array(_img(0))})
            assert status == 202
            ticket = body["ticket"]
            assert gated.entered.wait(timeout=10)

            daemon.begin_drain()
            # New POST work is refused with Retry-After...
            status, body, headers = client(
                "POST", "/v1/explain",
                {"method": "gated", "label": 0,
                 "image": encode_array(_img(1))})
            assert status == 503
            assert headers.get("Retry-After")
            # ...but liveness and polling still answer.
            status, body, _ = client("GET", "/healthz")
            assert status == 200 and body["draining"] is True
            assert client("GET", f"/v1/tickets/{ticket}")[0] == 202

            gated.release.set()
            drained = threading.Thread(target=daemon.drain)
            drained.start()
            drained.join(timeout=20)
            assert not drained.is_alive()
            # The in-flight ticket resolved during the drain.
            status, body, _ = client("GET", f"/v1/tickets/{ticket}")
            assert status == 200
            assert body["saliency"]["shape"] == [4, 4]
        finally:
            gated.release.set()
            daemon.shutdown()
            engine.close()


# ----------------------------------------------------------------------
# The daemon process: READY line, traffic, SIGTERM drain, exit 0
# ----------------------------------------------------------------------
class TestServeDaemon:
    SCRIPT = os.path.join(REPO_ROOT, "tools", "serve_daemon.py")

    @pytest.mark.skipif(sys.platform == "win32",
                        reason="POSIX signal semantics")
    def test_sigterm_drains_and_exits_clean(self, tmp_path):
        proc = subprocess.Popen(
            [sys.executable, self.SCRIPT, "--port", "0",
             "--methods", "gradcam,slow", "--executor", "threaded",
             "--workers", "1", "--api-key", "secret=acme",
             "--linger-s", "3"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")})
        try:
            ready = proc.stdout.readline()
            assert ready.startswith("READY "), ready
            url = ready.split()[1]
            client = _Client(url, key="secret")

            status, body, _ = client("GET", "/healthz", key=None)
            assert status == 200 and "slow" in body["methods"]

            status, body, _ = client(
                "POST", "/v1/explain",
                {"method": "gradcam", "encoding": "list",
                 "image": _img(1, side=6).tolist()})
            assert status == 200

            # Park an in-flight slow request (200ms demo method),
            # then SIGTERM: the drain contract must resolve it and the
            # linger window must let us collect it.
            status, body, _ = client(
                "POST", "/v1/explain",
                {"method": "slow", "mode": "async",
                 "image": encode_array(_img(2, side=6))})
            assert status == 202
            ticket = body["ticket"]

            proc.send_signal(signal.SIGTERM)
            deadline = time.monotonic() + 10
            resolved = None
            while time.monotonic() < deadline:
                try:
                    status, body, _ = client("GET",
                                             f"/v1/tickets/{ticket}")
                except (urllib.error.URLError, ConnectionError,
                        OSError):
                    break
                if status == 200:
                    resolved = body
                    break
                assert status in (202, 503)
                time.sleep(0.05)
            assert resolved is not None, \
                "in-flight ticket did not resolve during drain"
            assert resolved["saliency"]["shape"] == [6, 6]

            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
            assert "STOPPED" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


# ----------------------------------------------------------------------
# check_bench gates the http keys
# ----------------------------------------------------------------------
class TestHttpBenchGate:
    SCRIPT = os.path.join(REPO_ROOT, "tools", "check_bench.py")

    def test_committed_baseline_has_http_section(self):
        with open(os.path.join(REPO_ROOT, "BENCH_serve.json")) as fh:
            doc = json.load(fh)
        section = doc["current"]["http"]
        assert section["http_rps"] > 0
        assert section["http_p95_ms"] > 0

    def test_rps_regression_fails_the_gate(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(
            {"current": {"http": {"http_rps": 500.0}}}))
        cur.write_text(json.dumps(
            {"ci": {"http": {"http_rps": 10.0}}}))
        proc = subprocess.run(
            [sys.executable, self.SCRIPT, str(base), str(cur),
             "--current-label", "ci"],
            capture_output=True, text=True)
        assert proc.returncode == 1
        assert "http_rps" in proc.stdout + proc.stderr
