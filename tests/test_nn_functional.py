"""Unit tests for convolution / pooling / resampling primitives."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.functional import col2im, im2col

from conftest import numeric_grad


def check_grad_fn(forward, arrays, tol=1e-5):
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = forward(*tensors)
    (out * out).sum().backward()

    for t, a in zip(tensors, arrays):
        def f():
            fresh = [Tensor(arr) for arr in arrays]
            o = forward(*fresh).data
            return float((o * o).sum())
        num = numeric_grad(f, a)
        assert np.abs(num - t.grad).max() < tol


class TestIm2Col:
    def test_roundtrip_counts(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        cols = im2col(x, kernel=2, stride=2, padding=0)
        back = col2im(cols, x.shape, kernel=2, stride=2, padding=0)
        # Non-overlapping stride: every pixel visited exactly once.
        assert np.allclose(back, x)

    def test_overlap_accumulates(self, rng):
        x = np.ones((1, 1, 3, 3))
        cols = im2col(x, kernel=3, stride=1, padding=1)
        back = col2im(cols, x.shape, kernel=3, stride=1, padding=1)
        # Centre pixel appears in all 9 windows.
        assert back[0, 0, 1, 1] == 9

    def test_output_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        cols = im2col(x, kernel=3, stride=2, padding=1)
        assert cols.shape == (2, 3 * 9, 16)

    def test_nonoverlap_fast_path_matches_scatter(self, rng):
        """The stride >= kernel strided-view write must equal the generic
        scatter-add loop (here reproduced inline) on gapped windows."""
        cols = rng.standard_normal((2, 1 * 2 * 2, 2 * 2))
        x_shape = (2, 1, 7, 7)
        kernel, stride = 2, 3                 # stride > kernel: gaps
        back = col2im(cols, x_shape, kernel, stride, padding=0)
        expected = np.zeros(x_shape)
        cols6 = cols.reshape(2, 1, 2, 2, 2, 2)
        for ki in range(kernel):
            for kj in range(kernel):
                expected[:, :, ki:ki + stride * 2:stride,
                         kj:kj + stride * 2:stride] += cols6[:, :, ki, kj]
        assert np.allclose(back, expected)

    def test_nonoverlap_roundtrip_with_padding(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        cols = im2col(x, kernel=2, stride=2, padding=2)
        back = col2im(cols, x.shape, kernel=2, stride=2, padding=2)
        assert np.allclose(back, x)


class TestClassScoreSum:
    def test_value_and_gradient(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        labels = np.array([2, 0, 1, 2])
        out = F.class_score_sum(logits, labels)
        expected = sum(logits.data[i, labels[i]] for i in range(4))
        assert out.data == pytest.approx(expected)
        out.backward()
        grad = np.zeros((4, 3))
        grad[np.arange(4), labels] = 1.0
        assert np.allclose(logits.grad, grad)

    def test_matches_getitem_sum(self, rng):
        data = rng.standard_normal((3, 5))
        labels = np.array([4, 1, 0])
        a = Tensor(data.copy(), requires_grad=True)
        b = Tensor(data.copy(), requires_grad=True)
        F.class_score_sum(a, labels).backward()
        a_grad = a.grad
        b[np.arange(3), labels].sum().backward()
        assert np.allclose(a_grad, b.grad)


class TestFrozen:
    def test_skips_weight_grads_keeps_input_grads(self, rng):
        from repro import nn
        layer = nn.Linear(4, 2, rng=rng)
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        with nn.frozen(layer):
            (layer(x) ** 2).sum().backward()
        assert layer.weight.grad is None
        assert x.grad is not None
        assert layer.weight.requires_grad    # restored on exit

    def test_restores_mixed_flags(self, rng):
        from repro import nn
        layer = nn.Linear(2, 2, rng=rng)
        layer.bias.requires_grad = False
        with nn.frozen(layer):
            assert not layer.weight.requires_grad
        assert layer.weight.requires_grad
        assert not layer.bias.requires_grad


class TestConv2d:
    def test_shape_stride2(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        w = Tensor(rng.standard_normal((5, 3, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_matches_direct_computation(self, rng):
        x = rng.standard_normal((1, 1, 3, 3))
        w = rng.standard_normal((1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=0)
        expected = (x[0, 0] * w[0, 0]).sum()
        assert out.data[0, 0, 0, 0] == pytest.approx(expected)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.0, -2.0]))
        out = F.conv2d(x, w, b, padding=1)
        assert np.allclose(out.data[0, 0], 1.0)
        assert np.allclose(out.data[0, 1], -2.0)

    def test_gradients(self, rng):
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        check_grad_fn(lambda xx, ww, bb: F.conv2d(xx, ww, bb, stride=2,
                                                  padding=1), [x, w, b],
                      tol=1e-4)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))),
                     Tensor(np.zeros((1, 3, 3, 3))))

    def test_rect_kernel_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 4, 4))),
                     Tensor(np.zeros((1, 1, 2, 3))))


class TestConvTranspose2d:
    def test_doubles_spatial(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 4, 4)))
        w = Tensor(rng.standard_normal((4, 2, 4, 4)))
        out = F.conv2d_transpose(x, w, stride=2, padding=1)
        assert out.shape == (1, 2, 8, 8)

    def test_gradients(self, rng):
        x = rng.standard_normal((1, 2, 3, 3))
        w = rng.standard_normal((2, 2, 4, 4))
        check_grad_fn(lambda xx, ww: F.conv2d_transpose(xx, ww, stride=2,
                                                        padding=1), [x, w],
                      tol=1e-4)

    def test_adjoint_of_conv(self, rng):
        """<conv(x), y> == <x, conv_T(y)> — the defining adjoint property."""
        x = rng.standard_normal((1, 2, 8, 8))
        w = rng.standard_normal((3, 2, 4, 4))
        y = rng.standard_normal((1, 3, 4, 4))
        conv_x = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).data
        # conv_transpose weight layout is (C_in_of_y=3, C_out=2, k, k),
        # which is exactly the conv weight's native (3, 2, k, k) view.
        conv_t_y = F.conv2d_transpose(Tensor(y), Tensor(w), stride=2,
                                      padding=1).data
        assert (conv_x * y).sum() == pytest.approx((x * conv_t_y).sum(),
                                                   rel=1e-9)


class TestPooling:
    def test_avg_pool_value(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        assert out.data[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_avg_pool_grad(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        check_grad_fn(lambda xx: F.avg_pool2d(xx, 2), [x], tol=1e-5)

    def test_max_pool_value(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        assert out.data[0, 0, 1, 1] == 15.0

    def test_max_pool_grad_goes_to_max(self):
        x = Tensor(np.arange(4, dtype=float).reshape(1, 1, 2, 2),
                   requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad.reshape(-1), [0, 0, 0, 1])

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.mean(axis=(2, 3)))


class TestUpsample:
    def test_nearest_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = F.upsample_nearest2d(x, 2)
        assert out.shape == (1, 1, 4, 4)
        assert out.data[0, 0, 0, 1] == 1.0
        assert out.data[0, 0, 3, 3] == 4.0

    def test_grad_sums_over_duplicates(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        F.upsample_nearest2d(x, 2).sum().backward()
        assert np.allclose(x.grad, 4.0)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        s = F.softmax(x, axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((2, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_log_softmax_consistent(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        assert np.allclose(F.log_softmax(x).data,
                           np.log(F.softmax(x).data))

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))
        s = F.softmax(x)
        assert np.isfinite(s.data).all()


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_zero_p_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)
