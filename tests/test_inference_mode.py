"""Tests for the inference mode (no_grad) and the dtype regime."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def _small_net(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng),
        nn.InstanceNorm2d(4),
        nn.ReLU(),
        nn.Conv2d(4, 4, 3, stride=2, padding=1, rng=rng),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 3, rng=rng),
    )


class TestNoGrad:
    def test_forward_bit_identical(self, rng):
        net = _small_net()
        x = np.asarray(rng.standard_normal((2, 1, 8, 8)),
                       dtype=nn.get_default_dtype())
        tracked = net(Tensor(x)).data
        with nn.no_grad():
            untracked = net(Tensor(x)).data
        assert np.array_equal(tracked, untracked)

    def test_no_parents_retained(self, rng):
        net = _small_net()
        x = Tensor(np.asarray(rng.standard_normal((2, 1, 8, 8)),
                              dtype=nn.get_default_dtype()))
        with nn.no_grad():
            out = net(x)
        assert out._parents == ()
        assert out._backward is None
        assert not out.requires_grad

    def test_backward_after_no_grad_raises(self, rng):
        net = _small_net()
        x = Tensor(np.asarray(rng.standard_normal((2, 1, 8, 8)),
                              dtype=nn.get_default_dtype()))
        with nn.no_grad():
            out = net(x).sum()
        with pytest.raises(RuntimeError, match="no_grad"):
            out.backward()

    def test_scope_restored_on_exception(self):
        assert nn.is_grad_enabled()
        with pytest.raises(ValueError):
            with nn.no_grad():
                assert not nn.is_grad_enabled()
                raise ValueError("boom")
        assert nn.is_grad_enabled()

    def test_nested_enable_grad(self):
        with nn.no_grad():
            with nn.enable_grad():
                assert nn.is_grad_enabled()
                x = Tensor(np.ones(2), requires_grad=True)
                (x * 2).sum().backward()
                assert np.allclose(x.grad, [2.0, 2.0])
            assert not nn.is_grad_enabled()

    def test_decorator_form(self):
        @nn.no_grad()
        def run():
            return nn.is_grad_enabled()
        assert run() is False
        assert nn.is_grad_enabled()

    def test_set_grad_enabled_context(self):
        with nn.set_grad_enabled(False):
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_predict_proba_leaves_no_tape(self, rng):
        from repro.classifiers import SmallResNet
        clf = SmallResNet(num_classes=2, width=4, seed=0)
        images = np.asarray(rng.random((3, 1, 16, 16)),
                            dtype=nn.get_default_dtype())
        probs = clf.predict_proba(images)
        assert probs.shape == (3, 2)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)
        # A training step afterwards must still produce gradients.
        logits = clf(Tensor(images))
        nn.cross_entropy(logits, np.zeros(3, dtype=np.int64)).backward()
        assert clf.stem.weight.grad is not None


class TestDtypeRegime:
    def test_default_is_float32(self):
        assert nn.get_default_dtype() == np.float32
        assert Tensor([1.0]).dtype == np.float32
        assert nn.Linear(2, 2).weight.dtype == np.float32

    def test_float64_roundtrip(self):
        nn.set_default_dtype(np.float64)
        try:
            assert nn.Linear(2, 2).weight.dtype == np.float64
            assert Tensor([1.0]).dtype == np.float64
        finally:
            nn.set_default_dtype(np.float32)
        assert nn.Linear(2, 2).weight.dtype == np.float32

    def test_forward_stays_float32(self, rng):
        net = _small_net()
        x = Tensor(rng.standard_normal((2, 1, 8, 8)).astype(np.float32))
        out = net(x)
        assert out.dtype == np.float32
        assert F.softmax(out).dtype == np.float32

    def test_float32_float64_parity(self, rng):
        """Same weights, same input: float32 forward agrees to ~1e-4."""
        x64 = rng.standard_normal((2, 1, 8, 8))
        nn.set_default_dtype(np.float64)
        try:
            net64 = _small_net(seed=7)
            out64 = net64(Tensor(x64)).data
            state = net64.state_dict()
        finally:
            nn.set_default_dtype(np.float32)
        net32 = _small_net(seed=7)
        net32.load_state_dict({k: v.astype(np.float32)
                               for k, v in state.items()})
        out32 = net32(Tensor(x64.astype(np.float32))).data
        assert out32.dtype == np.float32
        assert np.abs(out32 - out64).max() < 1e-4

    def test_dataset_materialises_default_dtype(self):
        from repro.data import ImageDataset
        ds = ImageDataset(np.zeros((4, 1, 2, 2)), np.array([0, 0, 1, 1]))
        assert ds.images.dtype == nn.get_default_dtype()


class TestBatchedExplainers:
    def test_occlusion_batch_matches_single(self, rng):
        from repro.classifiers import SmallResNet
        from repro.explain import OcclusionExplainer
        clf = SmallResNet(num_classes=2, width=4, seed=0)
        images = np.asarray(rng.random((3, 1, 16, 16)),
                            dtype=nn.get_default_dtype())
        labels = np.array([0, 1, 0])
        explainer = OcclusionExplainer(clf, window=5, stride=4)
        batch = explainer.explain_batch(images, labels)
        singles = [explainer.explain(images[i], int(labels[i]))
                   for i in range(3)]
        assert len(batch) == 3
        for got, want in zip(batch, singles):
            assert np.allclose(got.saliency, want.saliency, atol=1e-6)
            assert got.label == want.label

    def test_lime_batch_shapes(self, rng):
        from repro.classifiers import SmallResNet
        from repro.explain import LimeExplainer
        clf = SmallResNet(num_classes=2, width=4, seed=0)
        images = np.asarray(rng.random((2, 1, 16, 16)),
                            dtype=nn.get_default_dtype())
        labels = np.array([0, 1])
        explainer = LimeExplainer(clf, grid=4, n_samples=24)
        results = explainer.explain_batch(images, labels)
        assert len(results) == 2
        for r in results:
            assert r.saliency.shape == (16, 16)
            assert (r.saliency >= 0).all()
