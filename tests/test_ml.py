"""Unit tests for the classical ML substrate."""

import numpy as np
import pytest

from repro.ml import (PCA, TSNE, DecisionTreeClassifier,
                      RandomForestClassifier, accuracy_score, binary_auc,
                      confusion_matrix, cross_val_accuracy, iou_score,
                      smote_sample, stratified_kfold_indices)


def make_blobs(rng, n=60, d=4, separation=4.0):
    """Two well-separated Gaussian blobs."""
    a = rng.standard_normal((n // 2, d))
    b = rng.standard_normal((n // 2, d)) + separation
    X = np.vstack([a, b])
    y = np.repeat([0, 1], n // 2)
    return X, y


class TestDecisionTree:
    def test_fits_separable_data(self, rng):
        X, y = make_blobs(rng)
        tree = DecisionTreeClassifier(rng=rng).fit(X, y)
        assert accuracy_score(y, tree.predict(X)) == 1.0

    def test_max_depth_limits(self, rng):
        X, y = make_blobs(rng, separation=0.5)
        stump = DecisionTreeClassifier(max_depth=1, rng=rng).fit(X, y)

        def depth(node):
            if node.is_leaf:
                return 0
            return 1 + max(depth(node.left), depth(node.right))
        assert depth(stump._root) <= 1

    def test_proba_sums_to_one(self, rng):
        X, y = make_blobs(rng)
        tree = DecisionTreeClassifier(max_depth=3, rng=rng).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pure_node_becomes_leaf(self, rng):
        X = rng.standard_normal((10, 2))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier(rng=rng).fit(X, y)
        assert tree._root.is_leaf

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_multiclass(self, rng):
        X = np.vstack([rng.standard_normal((20, 2)) + off
                       for off in (0, 5, 10)])
        y = np.repeat([0, 1, 2], 20)
        tree = DecisionTreeClassifier(rng=rng).fit(X, y)
        assert accuracy_score(y, tree.predict(X)) > 0.95


class TestRandomForest:
    def test_fits_separable_data(self, rng):
        X, y = make_blobs(rng)
        forest = RandomForestClassifier(n_estimators=10, rng=rng).fit(X, y)
        assert forest.score(X, y) == 1.0

    def test_generalizes(self, rng):
        X, y = make_blobs(rng, n=100)
        Xt, yt = make_blobs(np.random.default_rng(99), n=40)
        forest = RandomForestClassifier(n_estimators=15, max_depth=4,
                                        rng=rng).fit(X, y)
        assert forest.score(Xt, yt) > 0.9

    def test_proba_shape_and_range(self, rng):
        X, y = make_blobs(rng)
        forest = RandomForestClassifier(n_estimators=5, rng=rng).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))

    def test_deterministic_with_seed(self):
        X, y = make_blobs(np.random.default_rng(3), separation=1.0)
        p1 = RandomForestClassifier(
            n_estimators=5, rng=np.random.default_rng(0)).fit(X, y).predict(X)
        p2 = RandomForestClassifier(
            n_estimators=5, rng=np.random.default_rng(0)).fit(X, y).predict(X)
        assert np.all(p1 == p2)


class TestPCA:
    def test_explained_variance_ordered(self, rng):
        X = rng.standard_normal((50, 5)) * np.array([5, 3, 1, 0.5, 0.1])
        pca = PCA(3).fit(X)
        ratios = pca.explained_variance_ratio_
        assert np.all(np.diff(ratios) <= 1e-12)

    def test_transform_shape(self, rng):
        X = rng.standard_normal((20, 6))
        assert PCA(2).fit_transform(X).shape == (20, 2)

    def test_reconstruction_with_full_rank(self, rng):
        X = rng.standard_normal((30, 4))
        pca = PCA(4).fit(X)
        recon = pca.inverse_transform(pca.transform(X))
        assert np.allclose(recon, X, atol=1e-8)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((3, 3)))

    def test_components_orthonormal(self, rng):
        X = rng.standard_normal((40, 6))
        pca = PCA(3).fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-8)


class TestTSNE:
    def test_separates_blobs(self, rng):
        X, y = make_blobs(rng, n=40, separation=8.0)
        Y = TSNE(n_iter=250, perplexity=10, seed=0).fit_transform(X)
        center0 = Y[y == 0].mean(axis=0)
        center1 = Y[y == 1].mean(axis=0)
        spread0 = np.linalg.norm(Y[y == 0] - center0, axis=1).mean()
        gap = np.linalg.norm(center0 - center1)
        assert gap > spread0  # clusters separated beyond their spread

    def test_output_shape_and_centering(self, rng):
        X = rng.standard_normal((20, 5))
        Y = TSNE(n_iter=100, seed=0).fit_transform(X)
        assert Y.shape == (20, 2)
        assert np.allclose(Y.mean(axis=0), 0.0, atol=1e-8)

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((2, 3)))


class TestSMOTE:
    def test_samples_in_convex_hull_of_pairs(self, rng):
        X = rng.standard_normal((20, 3))
        samples = smote_sample(X, 50, rng=rng)
        assert samples.shape == (50, 3)
        # Convexity: every sample within the data's bounding box.
        assert np.all(samples >= X.min(axis=0) - 1e-9)
        assert np.all(samples <= X.max(axis=0) + 1e-9)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            smote_sample(np.zeros((1, 2)), 5)

    def test_deterministic_with_seed(self, rng):
        X = rng.standard_normal((10, 2))
        a = smote_sample(X, 5, rng=np.random.default_rng(1))
        b = smote_sample(X, 5, rng=np.random.default_rng(1))
        assert np.allclose(a, b)


class TestCrossval:
    def test_folds_partition_data(self, rng):
        y = np.repeat([0, 1], 25)
        seen = []
        for train_idx, test_idx in stratified_kfold_indices(y, 5, rng):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            seen.extend(test_idx)
        assert sorted(seen) == list(range(50))

    def test_folds_stratified(self, rng):
        y = np.repeat([0, 1], [40, 10])
        for __, test_idx in stratified_kfold_indices(y, 5, rng):
            labels = y[test_idx]
            assert (labels == 1).sum() == 2   # 10 / 5 folds

    def test_cross_val_accuracy_on_separable(self, rng):
        X, y = make_blobs(rng, n=60)
        mean, std, scores = cross_val_accuracy(
            lambda: DecisionTreeClassifier(max_depth=3,
                                           rng=np.random.default_rng(0)),
            X, y, n_splits=5, rng=rng)
        assert mean > 0.9
        assert len(scores) == 5
        assert std >= 0


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy_score([], []) == 0.0

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert cm[0, 0] == 1
        assert cm[0, 1] == 1
        assert cm[1, 1] == 2

    def test_auc_perfect(self):
        assert binary_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_auc_random(self):
        assert binary_auc([0, 1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_auc_degenerate(self):
        assert binary_auc([0, 0], [0.1, 0.2]) == 0.5

    def test_iou(self):
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        a[:2] = 1
        b[1:3] = 1
        assert iou_score(a, b) == pytest.approx(4 / 12)

    def test_iou_both_empty(self):
        assert iou_score(np.zeros((3, 3)), np.zeros((3, 3))) == 1.0
