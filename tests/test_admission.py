"""Tests for the admission-controlled serving runtime: ``max_pending``
backpressure (block vs reject), adaptive per-queue micro-batching, and
cost-aware (GDSF) cache eviction."""

import threading

import numpy as np
import pytest
from conftest import FlakyExplainer, GatedExplainer, StubExplainer

from repro.explain.base import SaliencyResult
from repro.serve import (EngineOverloaded, ExplainEngine,
                         MicroBatchScheduler, SaliencyCache,
                         ShardedSaliencyCache)


def _img(i: int, side: int = 4) -> np.ndarray:
    return np.full((1, side, side), float(i), dtype=np.float32)


def _result(value: float = 1.0) -> SaliencyResult:
    return SaliencyResult(np.full((4, 4), value), 0)


class TestBlockPolicy:
    def test_over_limit_submit_blocks_until_room(self):
        gated = GatedExplainer()
        engine = ExplainEngine(None, {"gated": gated}, max_batch=1,
                               max_pending=2, policy="block",
                               executor="threaded")
        with engine:
            engine.submit_async(_img(0), 0, "gated")
            engine.submit_async(_img(1), 0, "gated")
            assert gated.entered.wait(timeout=5)   # work is in flight

            admitted = threading.Event()

            def over_limit():
                engine.submit_async(_img(2), 0, "gated")
                admitted.set()

            t = threading.Thread(target=over_limit)
            t.start()
            # The third unique request must wait for room, not sail in.
            assert not admitted.wait(timeout=0.3)
            gated.release.set()
            assert admitted.wait(timeout=10)
            t.join(timeout=10)
            assert engine.drain() >= 1
            stats = engine.stats()
            assert stats["requests_served"] == 3
            assert stats["admission_blocked"] == 1
            assert stats["admission_blocked_ms"] > 0
            assert stats["admission_rejected"] == 0
            assert stats["unresolved"] == 0

    def test_serial_executor_blocked_submit_makes_progress(self):
        # max_pending below the flush point and no worker threads: the
        # blocked submit must dispatch the queued work itself instead of
        # deadlocking on a flush that will never come.
        stub = StubExplainer()
        engine = ExplainEngine(None, {"stub": stub}, max_batch=8,
                               max_pending=2, policy="block",
                               executor="serial")
        handles = [engine.submit_async(_img(i), 0, "stub")
                   for i in range(10)]
        engine.drain()
        assert all(h.done for h in handles)
        assert stub.computed == 10
        stats = engine.stats()
        assert stats["requests_served"] == 10
        assert stats["admission_blocked"] >= 1

    def test_blocked_submit_raises_when_pending_work_keeps_failing(self):
        broken = FlakyExplainer(failures=None)        # every batch fails
        engine = ExplainEngine(None, {"flaky": broken}, max_batch=8,
                               max_pending=1, policy="block",
                               executor="serial")
        engine.submit_async(_img(0), 0, "flaky")      # queued, not ready
        # The second submit dispatches the queued batch to make room;
        # the batch fails, gets one retry dispatch, and fails again —
        # backpressure can never drain, so the failure must surface
        # here (in the admission contract's own type, with the backend
        # error as the cause) instead of spinning forever.
        with pytest.raises(EngineOverloaded, match="keeps failing") as exc:
            engine.submit_async(_img(1), 0, "flaky")
        assert "backend failure" in str(exc.value.__cause__)
        assert broken.calls == 2                      # retried before raise
        assert engine.pending_count("flaky") == 1     # requeued for retry
        with pytest.raises(RuntimeError, match="backend failure"):
            engine.close()                            # still broken: loud

    def test_blocked_submit_recovers_transient_failure_via_retry(self):
        flaky = FlakyExplainer(failures=1)
        engine = ExplainEngine(None, {"flaky": flaky}, max_batch=8,
                               max_pending=1, policy="block",
                               executor="serial")
        h1 = engine.submit_async(_img(0), 0, "flaky")
        # The blocked submit's first dispatch fails; its own retry
        # dispatch recovers, so the fails-once backend never surfaces
        # as an exception to the producer.
        h2 = engine.submit_async(_img(1), 0, "flaky")
        assert h1.done                    # resolved by the retry
        engine.drain()
        assert h2.result().label == 0
        assert flaky.calls == 3           # fail, retry, then h2's batch

    def test_blocked_submit_dispatches_ready_queues_before_partials(self):
        # Backpressure progress must prefer queues that are already
        # ready (here: past their deadline) over force-flushing another
        # method's still-accumulating partial queue.
        stub_a, stub_b = StubExplainer(), StubExplainer()
        engine = ExplainEngine(None, {"a": stub_a, "b": stub_b},
                               max_batch=4, max_delay_ms=60_000.0,
                               max_pending=2, policy="block",
                               executor="serial")
        ha = engine.submit_async(_img(0), 0, "a")
        hb = engine.submit_async(_img(1), 0, "b")
        with engine._lock:                 # age queue "a" past deadline
            for request in engine._scheduler._queues[
                    ("a", (1, 4, 4), "normal")]:
                request.enqueued_at -= 120.0
        engine.submit_async(_img(2), 0, "a")    # over limit: must block
        assert ha.done                     # ready queue was dispatched
        assert not hb.done                 # partial queue kept batching
        engine.drain()
        assert hb.done

    def test_blocked_failure_not_raised_after_retry_recovered(self):
        engine = ExplainEngine(None,
                               {"flaky": FlakyExplainer(), "stub": StubExplainer()},
                               max_batch=1, max_pending=1, policy="block")
        handle = engine.submit_async(_img(0), 0, "flaky")  # fails, requeues
        engine.flush("flaky")                              # retry recovers
        assert handle.result().label == 0
        # The parked async failure is stale (every handle of its batch
        # resolved via the flush retry): later submits and drain() must
        # not re-raise recovered history as a spurious crash.
        other = engine.submit_async(_img(1), 0, "stub")
        engine.drain()
        assert other.done
        assert engine.drain() == 0


class TestRejectPolicy:
    def test_over_limit_submit_raises_engine_overloaded(self):
        gated = GatedExplainer()
        engine = ExplainEngine(None, {"gated": gated}, max_batch=1,
                               max_pending=1, policy="reject",
                               executor="threaded")
        with engine:
            h1 = engine.submit_async(_img(0), 0, "gated")
            assert gated.entered.wait(timeout=5)
            with pytest.raises(EngineOverloaded):
                engine.submit_async(_img(1), 0, "gated")
            # Duplicates of in-flight work add no compute: admitted.
            h2 = engine.submit_async(_img(0), 0, "gated")
            gated.release.set()
            engine.drain()
            assert h1.result() is h2.result()
            stats = engine.stats()
            assert stats["admission_rejected"] == 1
            assert stats["requests_served"] == 2
            assert gated.computed == 1

    def test_cache_hits_bypass_admission(self):
        gated = GatedExplainer()
        stub = StubExplainer()
        engine = ExplainEngine(None, {"gated": gated, "stub": stub},
                               max_batch=1, max_pending=1, policy="reject",
                               executor="threaded")
        with engine:
            warm = engine.submit_async(_img(7), 0, "stub")
            engine.drain()
            assert warm.done
            engine.submit_async(_img(0), 0, "gated")   # fills the bound
            assert gated.entered.wait(timeout=5)
            hit = engine.submit_async(_img(7), 0, "stub")
            assert hit.cache_hit and hit.done          # served, not rejected
            gated.release.set()

    def test_rejected_request_is_not_queued(self):
        gated = GatedExplainer()
        engine = ExplainEngine(None, {"gated": gated}, max_batch=1,
                               max_pending=1, policy="reject",
                               executor="threaded")
        with engine:
            engine.submit_async(_img(0), 0, "gated")
            assert gated.entered.wait(timeout=5)
            with pytest.raises(EngineOverloaded):
                engine.submit_async(_img(1), 0, "gated")
            assert engine.pending_count("gated") == 0
            assert engine.stats()["pending_handles"] == 1  # only in-flight
            gated.release.set()
            assert engine.drain() == 1

    def test_sync_queued_work_never_consumes_admission_budget(self):
        # The bound governs async ingestion; sync submits flush inline
        # and are self-limiting, so a sync producer's partial queue
        # must neither trigger rejections nor count as unresolved.
        stub = StubExplainer()
        engine = ExplainEngine(None, {"stub": stub}, max_batch=16,
                               max_pending=2, policy="reject")
        for i in range(4):                     # sync partial queue > bound
            engine.submit(_img(i), 0, "stub")
        assert engine.stats()["unresolved"] == 0
        handle = engine.submit_async(_img(99), 0, "stub")  # must admit
        assert engine.stats()["unresolved"] == 1
        engine.drain()
        assert handle.done
        assert engine.stats()["admission_rejected"] == 0

    def test_invalid_admission_config_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            ExplainEngine(None, {"stub": StubExplainer()}, max_pending=0)
        with pytest.raises(ValueError, match="admission policy"):
            ExplainEngine(None, {"stub": StubExplainer()}, policy="shrug")


class TestAdaptiveBatching:
    def test_limit_ramps_up_by_doubling_to_max(self):
        sched = MicroBatchScheduler(max_batch=32, min_batch=2,
                                    target_batch_ms=100.0)
        qk = ("cheap", (1, 4, 4))
        assert sched.batch_limit(qk) == 2
        limits = []
        for _ in range(5):
            # 1 ms per map: the desired batch is 100 maps, far above
            # the ceiling — the ramp must double, then clamp at max.
            sched.observe(qk, batch_ms=float(sched.batch_limit(qk)),
                          batch_size=sched.batch_limit(qk))
            limits.append(sched.batch_limit(qk))
        assert limits == [4, 8, 16, 32, 32]

    def test_limit_clamps_down_to_min_on_expensive_batches(self):
        sched = MicroBatchScheduler(max_batch=32, min_batch=2,
                                    target_batch_ms=100.0)
        qk = ("stylex", (1, 4, 4))
        for _ in range(5):
            sched.observe(qk, batch_ms=float(sched.batch_limit(qk)),
                          batch_size=sched.batch_limit(qk))
        assert sched.batch_limit(qk) == 32
        # One observed expensive batch (10 s per map) pulls the limit
        # straight back to the floor — no slow multiplicative decay.
        sched.observe(qk, batch_ms=10_000.0 * 32, batch_size=32)
        assert sched.batch_limit(qk) == 2

    def test_limits_are_per_queue(self):
        sched = MicroBatchScheduler(max_batch=16, min_batch=1,
                                    target_batch_ms=10.0)
        cheap = ("occlusion", (1, 4, 4))
        pricey = ("stylex", (1, 4, 4))
        for _ in range(4):
            sched.observe(cheap, batch_ms=0.1, batch_size=1)
            sched.observe(pricey, batch_ms=100.0, batch_size=1)
        assert sched.batch_limit(cheap) == 16
        assert sched.batch_limit(pricey) == 1
        assert set(sched.batch_limits()) == {"occlusion@1x4x4",
                                             "stylex@1x4x4"}

    def test_static_scheduler_ignores_observations(self):
        sched = MicroBatchScheduler(max_batch=8)
        qk = ("m", (1, 4, 4))
        sched.observe(qk, batch_ms=1e6, batch_size=1)
        assert sched.batch_limit(qk) == 8
        assert sched.batch_limits() == {}

    def test_invalid_adaptive_config_rejected(self):
        with pytest.raises(ValueError, match="min_batch"):
            MicroBatchScheduler(max_batch=4, min_batch=8)
        with pytest.raises(ValueError, match="target_batch_ms"):
            MicroBatchScheduler(max_batch=4, min_batch=2,
                                target_batch_ms=0.0)

    def test_engine_cheap_queue_ramps_wide(self):
        stub = StubExplainer()
        engine = ExplainEngine(None, {"stub": stub}, max_batch=8,
                               min_batch=1, target_batch_ms=500.0)
        handles = [engine.submit_async(_img(i), 0, "stub")
                   for i in range(24)]
        engine.drain()
        assert all(h.done for h in handles)
        stats = engine.stats()
        # Instant maps: the queue's limit must have ramped to the
        # ceiling, so far fewer batches ran than requests were served.
        assert stats["batch_limits"]["stub@1x4x4"] == 8
        assert stats["batches_run"] < 24

    def test_engine_expensive_queue_stays_small(self):
        pricey = StubExplainer(sleep_ms=10.0)
        pricey.name = "pricey"
        engine = ExplainEngine(None, {"pricey": pricey}, max_batch=8,
                               min_batch=1, target_batch_ms=15.0)
        for i in range(6):
            engine.submit_async(_img(i), 0, "pricey")
        engine.drain()
        # ~10 ms per map against a 15 ms budget: batches must stay at
        # one map each, bounding each flush's tail latency.
        assert engine.stats()["batch_limits"]["pricey@1x4x4"] == 1
        assert engine.stats()["batches_run"] == 6


class TestCostAwareEviction:
    def test_cost_policy_keeps_expensive_entry_under_pressure(self):
        pricey_key = ("pricey", "stylex", 0, None)
        flood = [(f"cheap{i}", "cae", 0, None) for i in range(20)]

        survivors = {}
        for policy in ("lru", "cost"):
            cache = SaliencyCache(capacity=4, policy=policy)
            cache.put(pricey_key, _result(), cost_ms=1000.0)
            for key in flood:
                cache.put(key, _result(), cost_ms=0.5)
            survivors[policy] = pricey_key in cache
        assert survivors["cost"] is True      # GDSF priority kept it
        assert survivors["lru"] is False      # recency-only evicted it

    def test_cost_policy_clock_ages_stale_entries_out(self):
        cache = SaliencyCache(capacity=2, policy="cost")
        stale = ("stale", "m", 0, None)
        cache.put(stale, _result(), cost_ms=10.0)
        # Keep inserting moderately-costed keys; every eviction ratchets
        # the clock, so even a higher-cost entry is eventually evictable
        # once enough priority mass has passed through the shard.
        for i in range(300):
            cache.put((f"k{i}", "m", 0, None), _result(), cost_ms=5.0)
        assert stale not in cache

    def test_sharded_cache_threads_policy_and_cost(self):
        cache = ShardedSaliencyCache(capacity=8, shards=2, policy="cost")
        assert cache.stats()["policy"] == "cost"
        cache.put(("d0", "m", 0, None), _result(), cost_ms=3.0)
        assert cache.get(("d0", "m", 0, None)) is not None

    def test_engine_cost_eviction_survives_cheap_flood(self):
        results = {}
        for eviction in ("lru", "cost"):
            pricey = StubExplainer(sleep_ms=20.0)
            pricey.name = "pricey"
            cheap = StubExplainer()
            cheap.name = "cheap"
            engine = ExplainEngine(None,
                                   {"pricey": pricey, "cheap": cheap},
                                   max_batch=4, cache_size=4,
                                   eviction=eviction)
            engine.explain(_img(0), 0, "pricey")      # cached, costed
            for i in range(1, 17):                    # cheap flood
                engine.explain(_img(i), 0, "cheap")
            engine.explain(_img(0), 0, "pricey")      # revisit
            results[eviction] = pricey.computed
        assert results["cost"] == 1    # revisit was a cache hit
        assert results["lru"] == 2     # flood evicted it: recomputed

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="eviction policy"):
            SaliencyCache(capacity=4, policy="fifo")


class TestFrozenCacheEntries:
    def test_mutating_any_array_field_of_a_hit_raises(self):
        cache = SaliencyCache(capacity=4)
        result = SaliencyResult(np.ones((4, 4)), 0,
                                meta={"bias_maps": np.ones((2, 4, 4)),
                                      "note": "writable non-array"})
        cache.put(("d", "m", 0, None), result)
        hit = cache.get(("d", "m", 0, None))
        with pytest.raises((ValueError, RuntimeError)):
            hit.saliency[0, 0] = 99.0
        with pytest.raises((ValueError, RuntimeError)):
            hit.meta["bias_maps"][0, 0, 0] = 99.0
        # The map is still readable and the non-array meta untouched.
        assert hit.normalized().max() <= 1.0
        assert hit.meta["note"] == "writable non-array"
