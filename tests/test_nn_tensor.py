"""Unit tests for the autodiff Tensor core."""

import numpy as np
import pytest

from conftest import numeric_grad

from repro import nn
from repro.nn.tensor import Tensor, _unbroadcast


def check_grad(build, *arrays, tol=1e-6):
    """Compare autodiff gradient against numeric for each input array."""
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for t, a in zip(tensors, arrays):
        def f(a=a, arrays=arrays):
            fresh = [Tensor(arr) for arr in arrays]
            return float(build(*fresh).data)
        num = numeric_grad(f, a)
        assert t.grad is not None
        assert np.abs(num - t.grad).max() < tol, \
            f"gradient mismatch: {np.abs(num - t.grad).max()}"


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == nn.get_default_dtype()
        assert t.dtype == np.float32

    def test_int_array_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.floating)

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20


class TestArithmeticGradients:
    def test_add(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((3, 4))
        check_grad(lambda x, y: (x + y).sum(), a, b)

    def test_add_broadcast(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4,))
        check_grad(lambda x, y: (x + y).sum(), a, b)

    def test_sub(self, rng):
        a, b = rng.standard_normal(5), rng.standard_normal(5)
        check_grad(lambda x, y: (x - y * 2.0).sum(), a, b)

    def test_rsub_scalar(self, rng):
        a = rng.standard_normal(4)
        check_grad(lambda x: (1.0 - x).sum(), a)

    def test_mul(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        check_grad(lambda x, y: (x * y).sum(), a, b)

    def test_div(self, rng):
        a = rng.standard_normal(5)
        b = rng.standard_normal(5) + 3.0
        check_grad(lambda x, y: (x / y).sum(), a, b, tol=1e-5)

    def test_pow(self, rng):
        a = np.abs(rng.standard_normal(5)) + 0.5
        check_grad(lambda x: (x ** 3).sum(), a, tol=1e-4)

    def test_neg(self, rng):
        a = rng.standard_normal(5)
        check_grad(lambda x: (-x).sum(), a)

    def test_pow_non_scalar_exponent_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([1.0, 2.0])


class TestUnaryGradients:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_unary(self, op, rng):
        a = rng.standard_normal(6) + 0.1   # avoid |x| kink at exactly 0
        check_grad(lambda x: getattr(x, op)().sum(), a, tol=1e-5)

    def test_log(self, rng):
        a = np.abs(rng.standard_normal(5)) + 0.5
        check_grad(lambda x: x.log().sum(), a, tol=1e-5)

    def test_sqrt(self, rng):
        a = np.abs(rng.standard_normal(5)) + 0.5
        check_grad(lambda x: x.sqrt().sum(), a, tol=1e-5)

    def test_leaky_relu(self, rng):
        a = rng.standard_normal(8) + 0.05
        check_grad(lambda x: x.leaky_relu(0.2).sum(), a, tol=1e-5)

    def test_clip_gradient_masks_outside(self):
        t = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis(self, rng):
        a = rng.standard_normal((3, 4))
        check_grad(lambda x: (x.sum(axis=0) ** 2).sum(), a, tol=1e-5)

    def test_mean_matches_numpy(self, rng):
        a = rng.standard_normal((3, 4, 5))
        assert np.allclose(Tensor(a).mean(axis=(1, 2)).data,
                           a.mean(axis=(1, 2)))

    def test_mean_grad(self, rng):
        a = rng.standard_normal((4, 3))
        check_grad(lambda x: (x.mean(axis=1) ** 2).sum(), a, tol=1e-5)

    def test_var_matches_numpy(self, rng):
        a = rng.standard_normal((6, 5))
        assert np.allclose(Tensor(a).var(axis=0).data, a.var(axis=0))

    def test_max_grad_flows_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 3.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        t = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        t.max().backward()
        assert t.grad.sum() == pytest.approx(1.0)


class TestShapeOps:
    def test_reshape_grad(self, rng):
        a = rng.standard_normal((2, 6))
        check_grad(lambda x: (x.reshape(3, 4) ** 2).sum(), a, tol=1e-5)

    def test_transpose_grad(self, rng):
        a = rng.standard_normal((2, 3, 4))
        check_grad(lambda x: (x.transpose(2, 0, 1) ** 2).sum(), a, tol=1e-5)

    def test_flatten(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.flatten().shape == (2, 12)

    def test_getitem_grad_scatter(self):
        t = Tensor(np.arange(6, dtype=float), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(t.grad, [2.0, 0.0, 1.0, 0.0, 0.0, 0.0])

    def test_pad2d_roundtrip_grad(self, rng):
        a = rng.standard_normal((1, 1, 4, 4))
        check_grad(lambda x: (x.pad2d(2) ** 2).sum(), a, tol=1e-5)

    def test_concat_grad(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 2))
        check_grad(lambda x, y: (Tensor.concat([x, y], axis=1) ** 2).sum(),
                   a, b, tol=1e-5)

    def test_stack_shapes(self):
        a, b = Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 3)))
        assert Tensor.stack([a, b], axis=0).shape == (2, 2, 3)


class TestMatmul:
    def test_matmul_grad(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 2))
        check_grad(lambda x, y: (x @ y).sum(), a, b, tol=1e-5)

    def test_batched_matmul_grad(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((2, 4, 5))
        check_grad(lambda x, y: ((x @ y) ** 2).sum(), a, b, tol=1e-4)

    def test_broadcast_matmul_grad(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((4, 5))
        check_grad(lambda x, y: (x @ y).sum(), a, b, tol=1e-5)


class TestBackwardMechanics:
    def test_backward_non_scalar_raises(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_backward_explicit_grad_shape_check(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(4))

    def test_grad_accumulates_over_backwards(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 3).sum().backward()
        (t * 3).sum().backward()
        assert np.allclose(t.grad, [6.0, 6.0])

    def test_diamond_graph_accumulation(self):
        # y = x*x + x*x uses x twice via shared intermediate consumers.
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * x
        b = x * 3.0
        (a + b).sum().backward()
        assert np.allclose(x.grad, [2 * 2.0 + 3.0])

    def test_detach_blocks_gradient(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(RuntimeError, match="autodiff tape"):
            (x.detach() * 5).sum().backward()
        assert x.grad is None

    def test_clone_passes_gradient(self):
        x = Tensor(np.ones(2), requires_grad=True)
        x.clone().sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])

    def test_retain_grad_keeps_interior_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        mid = x * 2
        mid.retain_grad()
        mid.sum().backward()
        assert mid.grad is not None
        assert np.allclose(mid.grad, [1.0, 1.0])

    def test_interior_grad_released_by_default(self):
        x = Tensor(np.ones(2), requires_grad=True)
        mid = x * 2
        mid.sum().backward()
        assert mid.grad is None

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        x.sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_tracking_without_requires(self):
        x = Tensor(np.ones(2))
        out = (x * 2).sum()
        assert out.requires_grad is False


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sum_prepended_axis(self):
        g = np.ones((5, 2, 3))
        assert _unbroadcast(g, (2, 3)).shape == (2, 3)
        assert _unbroadcast(g, (2, 3))[0, 0] == 5

    def test_sum_size1_axis(self):
        g = np.ones((2, 3))
        out = _unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert out[0, 0] == 3

    def test_scalar_target(self):
        g = np.ones((4, 4))
        assert _unbroadcast(g, ()) == 16


class TestFactories:
    def test_zeros_ones(self):
        assert np.all(nn.zeros((2, 2)).data == 0)
        assert np.all(nn.ones((2, 2)).data == 1)

    def test_randn_seeded(self):
        a = nn.randn((3,), rng=np.random.default_rng(1))
        b = nn.randn((3,), rng=np.random.default_rng(1))
        assert np.allclose(a.data, b.data)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert nn.as_tensor(t) is t
