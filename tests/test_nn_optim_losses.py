"""Unit tests for optimisers, losses, blocks, and serialization."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F


def quadratic_loss(param: Tensor) -> Tensor:
    """Convex objective with minimum at 3."""
    diff = param - Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = nn.SGD([p], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Tensor(np.zeros(1), requires_grad=True)
            opt = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                loss = quadratic_loss(p)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return abs(p.data[0] - 3.0)
        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Tensor(np.full(2, 10.0), requires_grad=True)
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(2)
        opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_skips_none_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = nn.SGD([p], lr=0.1)
        opt.step()   # no grad yet — must not crash
        assert np.allclose(p.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = nn.Adam([p], lr=0.2)
        for _ in range(200):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        opt = nn.Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        # First Adam step magnitude ~ lr regardless of gradient scale.
        assert abs(p.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_grad_clip_limits_update(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = nn.Adam([p], lr=0.1, grad_clip=1.0)
        p.grad = np.array([1e6, 1e6])
        opt.step()
        assert np.all(np.abs(p.data) <= 0.11)

    def test_zero_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        p.grad = np.ones(2)
        nn.Adam([p], lr=0.1).zero_grad()
        assert p.grad is None


class TestLosses:
    def test_l1_loss_value(self):
        a = Tensor(np.array([1.0, 2.0]))
        b = Tensor(np.array([2.0, 0.0]))
        assert nn.l1_loss(a, b).item() == pytest.approx(1.5)

    def test_mse_loss_value(self):
        a = Tensor(np.array([1.0, 2.0]))
        b = Tensor(np.array([2.0, 0.0]))
        assert nn.mse_loss(a, b).item() == pytest.approx((1 + 4) / 2)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = nn.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = nn.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3))

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        nn.cross_entropy(logits, np.array([1])).backward()
        assert logits.grad[0, 0] > 0    # push down wrong class
        assert logits.grad[0, 1] < 0    # push up true class

    def test_binary_real_fake_labels(self):
        logits = Tensor(np.array([[0.0, 100.0]]))  # index 1 = "real"
        assert nn.binary_real_fake_loss(logits, is_real=True).item() < 1e-6
        assert nn.binary_real_fake_loss(logits, is_real=False).item() > 10

    def test_accuracy_helper(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert nn.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestBlocks:
    def test_residual_block_preserves_shape(self, rng):
        block = nn.ResidualBlock(8, rng=rng)
        x = Tensor(rng.standard_normal((2, 8, 8, 8)))
        assert block(x).shape == x.shape

    def test_down_block_halves(self, rng):
        block = nn.DownBlock(4, 8, rng=rng)
        out = block(Tensor(rng.standard_normal((1, 4, 8, 8))))
        assert out.shape == (1, 8, 4, 4)

    def test_up_block_doubles(self, rng):
        block = nn.UpBlock(8, 4, rng=rng)
        out = block(Tensor(rng.standard_normal((1, 8, 4, 4))))
        assert out.shape == (1, 4, 8, 8)

    def test_mlp_shapes(self, rng):
        mlp = nn.MLP(4, [8, 8], 2, rng=rng)
        out = mlp(Tensor(rng.standard_normal((5, 4))))
        assert out.shape == (5, 2)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path, rng):
        net = nn.Sequential(nn.Conv2d(1, 4, 3, padding=1, rng=rng),
                            nn.BatchNorm2d(4))
        path = str(tmp_path / "model.npz")
        nn.save_state(net, path)

        other = nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=np.random.default_rng(99)),
            nn.BatchNorm2d(4))
        nn.load_state(other, path)
        for (n1, p1), (n2, p2) in zip(net.named_parameters(),
                                      other.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)

    def test_load_appends_npz_extension(self, tmp_path, rng):
        net = nn.Linear(2, 2, rng=rng)
        path = str(tmp_path / "weights.npz")
        nn.save_state(net, path)
        other = nn.Linear(2, 2, rng=np.random.default_rng(5))
        nn.load_state(other, str(tmp_path / "weights"))
        assert np.allclose(net.weight.data, other.weight.data)

    def test_outputs_identical_after_load(self, tmp_path, rng):
        net = nn.Sequential(nn.Linear(3, 5, rng=rng), nn.Tanh(),
                            nn.Linear(5, 2, rng=rng))
        x = Tensor(rng.standard_normal((4, 3)))
        expected = net(x).data
        path = str(tmp_path / "m.npz")
        nn.save_state(net, path)
        fresh = nn.Sequential(
            nn.Linear(3, 5, rng=np.random.default_rng(7)), nn.Tanh(),
            nn.Linear(5, 2, rng=np.random.default_rng(8)))
        nn.load_state(fresh, path)
        assert np.allclose(fresh(x).data, expected)
