"""Tests for the process-pool serving executor: spec replication,
payload codec, serial-parity, cross-process dedup, failure/retry and
lifecycle (worker death, clean shutdown, handle conservation)."""

import os
import threading

import numpy as np
import pytest

from repro.serve import (EngineOverloaded, EngineSpec, ExplainEngine,
                         ProcessExecutor, WorkerBatchError, WorkerCrashed,
                         demo_spec, make_executor)
from repro.serve.worker import (_demo_explainers, decode_results,
                                encode_results)


def _images(n: int, side: int = 16, channels: int = 1) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.standard_normal((n, channels, side, side)) \
        .astype(np.float32)


@pytest.fixture(scope="module")
def pool():
    """One shared 2-worker pool over the demo spec (gradcam + occlusion
    + a 100 ms/map sleeper).  Engines built on it must not be closed —
    ``close()`` would shut the shared workers down; the fixture owns
    the shutdown."""
    spec = demo_spec(("gradcam", "occlusion", "slow"), slow_ms=100.0)
    classifier, explainers = spec.materialize()
    executor = ProcessExecutor(spec, workers=2)
    yield classifier, explainers, executor
    executor.shutdown()
    assert all(not c.process.is_alive() for c in executor._all)


def _engine(pool, **kwargs) -> ExplainEngine:
    classifier, explainers, executor = pool
    kwargs.setdefault("max_batch", 4)
    return ExplainEngine(classifier, explainers, executor=executor,
                         **kwargs)


def _maps_computed(executor) -> int:
    return sum(s["maps"] for s in executor.worker_stats())


class TestEngineSpec:
    def test_string_factory_resolves_and_materializes(self):
        spec = demo_spec(("gradcam",), width=8, seed=3)
        assert spec.factory == "repro.serve.worker:_demo_explainers"
        classifier, explainers = spec.materialize()
        assert set(explainers) == {"gradcam"}
        # Same recipe, fresh call: replicas are bit-identical (the
        # parity the worker processes rely on).
        again, _ = demo_spec(("gradcam",), width=8, seed=3).materialize()
        images = _images(2)
        np.testing.assert_array_equal(classifier.predict_proba(images),
                                      again.predict_proba(images))

    def test_callable_factory_passes_through(self):
        spec = EngineSpec(_demo_explainers,
                          kwargs=dict(methods=("occlusion",)))
        _, explainers = spec.materialize()
        assert set(explainers) == {"occlusion"}

    def test_malformed_string_factory_rejected(self):
        with pytest.raises(ValueError, match="module:attr"):
            EngineSpec("no-colon-here").resolve_factory()

    def test_factory_must_return_explainer_mapping(self):
        with pytest.raises(TypeError, match="mapping"):
            EngineSpec(dict).materialize()

    def test_unknown_demo_method_rejected(self):
        with pytest.raises(KeyError, match="no methods"):
            demo_spec(("nope",)).materialize()

    def test_result_codec_round_trip(self):
        from repro.explain.base import SaliencyResult
        results = [SaliencyResult(np.arange(16, dtype=np.float32)
                                  .reshape(4, 4), 1, target_label=0,
                                  meta={"bias": np.ones(3)}),
                   SaliencyResult(np.zeros((4, 4), dtype=np.float32), 0)]
        decoded = decode_results(encode_results(results))
        assert len(decoded) == 2
        np.testing.assert_array_equal(decoded[0].saliency,
                                      results[0].saliency)
        assert decoded[0].label == 1 and decoded[0].target_label == 0
        np.testing.assert_array_equal(decoded[0].meta["bias"], np.ones(3))
        assert decoded[1].target_label is None

    def test_make_executor_process_requires_spec(self):
        with pytest.raises(ValueError, match="EngineSpec"):
            make_executor("process")


class TestProcessExecutor:
    def test_submitted_callables_run_in_parent(self, pool):
        # The executor contract: submit() runs the engine's bookkeeping
        # closure in the *parent* (locks, cache, handles live here);
        # only run_batch ships compute to a worker.
        _, _, executor = pool
        assert executor.submit(os.getpid).result() == os.getpid()

    def test_serial_parity_peak_relative(self, pool):
        classifier, explainers, _ = pool
        engine = _engine(pool)
        serial = ExplainEngine(classifier, explainers, max_batch=4)
        images = _images(6)
        labels = np.array([0, 1, 0, 1, 0, 1])
        for method in ("gradcam", "occlusion"):
            remote = engine.explain_batch(images, labels, method)
            local = serial.explain_batch(images, labels, method)
            for r, l in zip(remote, local):
                peak = max(np.abs(l.saliency).max(), 1e-12)
                assert np.abs(r.saliency - l.saliency).max() / peak < 1e-3
                assert r.label == l.label

    def test_worker_measured_cost_feeds_cache(self, pool):
        # The sleeper costs ~100 ms/map *inside the worker*; the cost
        # recorded at insert must reflect that compute, which only
        # works if the worker's own clock rides back with the payload.
        engine = _engine(pool, cache_size=64, eviction="cost")
        engine.explain(_images(1)[0], 0, "slow")
        shard = engine.cache._shard(next(iter(
            k for s in engine.cache.shards for k in s._store)))
        (cost,) = shard._cost.values()
        assert cost > 50.0

    def test_stats_aggregate_worker_plan_counters(self, pool):
        # Each replica compiles privately; stats() must sum the per-
        # worker plan counters (and max arena_bytes) instead of showing
        # the parent's unused cache.  The shared pool may have compiled
        # in earlier tests, so the assertions are monotone (>=).
        engine = _engine(pool, cache_size=64)
        images = _images(8)
        labels = np.zeros(4, dtype=np.int64)
        engine.explain_batch(images[:4], labels, "gradcam")
        engine.explain_batch(images[4:], labels, "gradcam")
        plans = engine.stats()["plans"]
        assert plans is not None
        assert plans["compiled"] >= 1
        assert plans["compiled"] + plans["replay_hits"] >= 2
        assert plans["arena_bytes"] > 0
        per_worker = [w["plans"] for _, _, ex in [pool]
                      for w in ex.worker_stats()]
        assert plans["compiled"] >= max(w["compiled"]
                                        for w in per_worker)

    def test_dedup_exactly_once_across_processes(self, pool):
        _, _, executor = pool
        engine = _engine(pool, max_batch=2)
        before = _maps_computed(executor)
        unique, repeats = 4, 3
        images = _images(unique)
        rng = np.random.default_rng(0)
        order = rng.permutation(np.repeat(np.arange(unique), repeats))
        handles = [engine.submit_async(images[i], int(i % 2), "gradcam")
                   for i in order]
        engine.drain()
        assert all(h.done for h in handles)
        stats = engine.stats()
        # Exactly one compute per unique request, counted where the
        # compute actually happened: inside the worker processes.
        assert _maps_computed(executor) - before == unique
        assert stats["cache_inserts"] == unique
        assert stats["requests_served"] == unique * repeats
        assert stats["dedup_hits"] + stats["cache_hits"] \
            == unique * (repeats - 1)

    def test_pending_handles_conservation_across_dispatch(self, pool):
        engine = _engine(pool, max_batch=2)
        images = _images(3)
        # Two submits fill the queue: the batch dispatches to a worker
        # (a ~200 ms sleep) and its handles are *in flight*, not queued.
        h1 = engine.submit_async(images[0], 0, "slow")
        h2 = engine.submit_async(images[1], 0, "slow")
        h3 = engine.submit_async(images[2], 0, "slow")   # stays queued
        stats = engine.stats()
        assert stats["pending"] == 1                     # queued unique
        assert stats["pending_handles"] == 3             # queued+in-flight
        engine.drain()
        assert all(h.done for h in (h1, h2, h3))
        stats = engine.stats()
        assert stats["pending_handles"] == 0
        assert stats["requests_served"] == 3

    def test_remote_failure_propagates_with_cause_through_drain(self):
        spec = demo_spec(("boom", "occlusion"))
        classifier, explainers = spec.materialize()
        executor = ProcessExecutor(spec, workers=1)
        engine = ExplainEngine(classifier, explainers, max_batch=1,
                               executor=executor)
        try:
            engine.submit_async(_images(1)[0], 0, "boom")
            with pytest.raises(WorkerBatchError,
                               match="injected worker failure") as exc:
                engine.drain()
            # The remote traceback names the real failure site, not the
            # parent-side pipe round-trip.
            assert "explain_batch" in exc.value.remote_traceback
            # Failure contract unchanged: the batch requeued for retry,
            # and the pool survived a batch that merely *raised*.
            assert engine.pending_count("boom") == 1
            assert executor.alive_workers == 1
            # Other methods still serve on the surviving pool.
            ok = engine.explain(_images(1)[0], 1, "occlusion")
            assert ok.label == 1
            with pytest.raises(WorkerBatchError):
                engine.close()               # retried, still failing: loud
        finally:
            executor.shutdown()

    def test_worker_death_mid_batch_then_close_overloads_with_cause(self):
        spec = demo_spec(("exit", "occlusion"))
        classifier, explainers = spec.materialize()
        executor = ProcessExecutor(spec, workers=1)
        engine = ExplainEngine(classifier, explainers, max_batch=1,
                               executor=executor)
        engine.submit_async(_images(1)[0], 0, "exit")
        # The lone worker os._exits mid-batch: the pool has no
        # survivors, so the failure surfaces in the engine's
        # cannot-make-progress type with the crash as the cause.
        with pytest.raises(EngineOverloaded) as exc:
            engine.drain()
        assert isinstance(exc.value.__cause__, WorkerCrashed)
        assert executor.alive_workers == 0
        # close() retries the drain once (the requeued batch hits the
        # dead pool again), then re-raises — stranded handles are loud,
        # and the shutdown still reaps every process: no orphans.
        with pytest.raises(EngineOverloaded) as exc2:
            engine.close()
        assert isinstance(exc2.value.__cause__, WorkerCrashed)
        assert all(not c.process.is_alive() for c in executor._all)

    def test_batch_failure_recovers_on_surviving_worker(self):
        # One worker dies mid-batch; the pool keeps a survivor, so the
        # engine's requeue-and-retry lands the *other* method's work
        # without the producer ever seeing the crash type escalate.
        spec = demo_spec(("exit", "gradcam"))
        classifier, explainers = spec.materialize()
        executor = ProcessExecutor(spec, workers=2)
        engine = ExplainEngine(classifier, explainers, max_batch=1,
                               executor=executor)
        try:
            engine.submit_async(_images(1)[0], 0, "exit")
            with pytest.raises(WorkerCrashed):
                engine.drain()               # survivor remains: not Overloaded
            assert executor.alive_workers == 1
            result = engine.explain(_images(1)[0], 1, "gradcam")
            assert result.label == 1
        finally:
            executor.shutdown()

    def test_engine_close_shuts_pool_down_cleanly(self):
        spec = demo_spec(("occlusion",))
        classifier, explainers = spec.materialize()
        executor = ProcessExecutor(spec, workers=2)
        with ExplainEngine(classifier, explainers, max_batch=2,
                           executor=executor) as engine:
            handles = [engine.submit_async(img, 0, "occlusion")
                       for img in _images(4)]
            engine.drain()
            assert all(h.done for h in handles)
        # __exit__ drained then shut down: every worker exited by
        # itself (clean stop message, exitcode 0), none orphaned.
        assert executor.alive_workers == 0
        for channel in executor._all:
            assert not channel.process.is_alive()
            assert channel.process.exitcode == 0
        executor.shutdown()                  # idempotent

    def test_broken_spec_fails_constructor_with_remote_traceback(self):
        with pytest.raises(WorkerCrashed, match="materialize"):
            ProcessExecutor(demo_spec(("nope",)), workers=1,
                            startup_timeout_s=60.0)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessExecutor(demo_spec(), workers=0)
        with pytest.raises(TypeError, match="EngineSpec"):
            ProcessExecutor("not a spec")
