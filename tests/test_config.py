"""Unit tests for the configuration module."""

import numpy as np
import pytest

from repro.config import (DATASET_NAMES, TABLE1_COUNTS, TASKS, LossWeights,
                          ReproConfig, _env_float, _env_int)


class TestLossWeights:
    def test_paper_defaults(self):
        """Section IV.A: λ1=10, λ2=1, λ3=1, λ4=10, λ5=1, λ6=1, φ1=1, φ2=2."""
        w = LossWeights()
        assert w.lambda1 == 10.0
        assert w.lambda2 == 1.0
        assert w.lambda3 == 1.0
        assert w.lambda4 == 10.0
        assert w.lambda5 == 1.0
        assert w.lambda6 == 1.0
        assert w.phi1 == 1.0
        assert w.phi2 == 2.0

    def test_override(self):
        assert LossWeights(lambda3=0.0).lambda3 == 0.0


class TestReproConfig:
    def test_paper_cs_dim(self):
        assert ReproConfig().cs_dim == 8     # paper: 8-d CS code

    def test_is_shape_quarter_resolution(self):
        cfg = ReproConfig(image_size=32, base_channels=16)
        c, h, w = cfg.is_shape
        assert (h, w) == (8, 8)              # 1/4 spatial, as in the paper
        assert c == 32                       # base * 2

    def test_adam_settings_match_paper(self):
        cfg = ReproConfig()
        assert cfg.lr == 1e-4
        assert cfg.weight_decay == 1e-4

    def test_env_int_parsing(self, monkeypatch):
        monkeypatch.setenv("X_TEST_INT", "17")
        assert _env_int("X_TEST_INT", 3) == 17
        monkeypatch.setenv("X_TEST_INT", "junk")
        assert _env_int("X_TEST_INT", 3) == 3

    def test_env_float_parsing(self, monkeypatch):
        monkeypatch.setenv("X_TEST_F", "2.5")
        assert _env_float("X_TEST_F", 1.0) == 2.5
        monkeypatch.setenv("X_TEST_F", "junk")
        assert _env_float("X_TEST_F", 1.0) == 1.0

    def test_image_size_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_IMAGE_SIZE", "64")
        assert ReproConfig().image_size == 64


class TestTableOne:
    def test_all_datasets_present(self):
        assert set(DATASET_NAMES) == {"oct", "brain_tumor1", "brain_tumor2",
                                      "chest_xray", "face"}

    def test_paper_counts_verbatim(self):
        """Spot-check the Table I numbers transcribed from the paper."""
        assert TABLE1_COUNTS["oct"]["train_abnormal"] == 24000
        assert TABLE1_COUNTS["brain_tumor2"]["test_abnormal"] == 1623
        assert TABLE1_COUNTS["face"]["train_normal"] == 23243
        assert TABLE1_COUNTS["chest_xray"]["test_normal"] == 234

    def test_tasks_labels(self):
        assert TASKS["face"] == "gender"
        assert TASKS["chest_xray"] == "pneumonia"
        assert set(TASKS) == set(TABLE1_COUNTS)
