"""Unit tests for the black-box classifier and its trainer."""

import numpy as np
import pytest

from repro import nn
from repro.classifiers import ClassifierTrainer, SmallResNet, train_classifier
from repro.data import ImageDataset


class TestSmallResNet:
    def test_logits_shape(self, rng):
        model = SmallResNet(num_classes=3, width=8)
        logits = model(nn.Tensor(rng.random((2, 1, 16, 16))))
        assert logits.shape == (2, 3)

    def test_predict_proba_rows_sum_to_one(self, rng):
        model = SmallResNet(num_classes=4, width=8)
        proba = model.predict_proba(rng.random((5, 1, 16, 16)))
        assert proba.shape == (5, 4)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_argmax_consistent(self, rng):
        model = SmallResNet(num_classes=2, width=8)
        images = rng.random((6, 1, 16, 16))
        assert np.all(model.predict(images)
                      == model.predict_proba(images).argmax(axis=1))

    def test_forward_with_features(self, rng):
        model = SmallResNet(num_classes=2, width=8)
        logits, feats = model.forward_with_features(
            nn.Tensor(rng.random((1, 1, 16, 16))))
        assert logits.shape == (1, 2)
        assert feats.shape == (1, 32, 4, 4)   # width*4 at 1/4 resolution

    def test_forward_with_all_features(self, rng):
        model = SmallResNet(num_classes=2, width=8)
        __, feats = model.forward_with_all_features(
            nn.Tensor(rng.random((1, 1, 16, 16))))
        assert len(feats) == 4
        assert feats[0].shape[2] == 16      # stem keeps resolution

    def test_seed_determinism(self, rng):
        images = rng.random((2, 1, 16, 16))
        a = SmallResNet(2, width=8, seed=3).predict_proba(images)
        b = SmallResNet(2, width=8, seed=3).predict_proba(images)
        assert np.allclose(a, b)

    def test_batched_inference_matches_full(self, rng):
        model = SmallResNet(num_classes=2, width=8)
        model.eval()
        images = rng.random((7, 1, 16, 16))
        assert np.allclose(model.predict_proba(images, batch_size=3),
                           model.predict_proba(images, batch_size=7),
                           atol=1e-10)


class TestTrainer:
    def test_training_improves_train_accuracy(self, tiny_train_set):
        model = SmallResNet(2, width=8, seed=0)
        trainer = ClassifierTrainer(model, rng=np.random.default_rng(0))
        history = trainer.fit(tiny_train_set, epochs=4, batch_size=8)
        assert history.accuracies[-1] > history.accuracies[0]
        assert history.losses[-1] < history.losses[0]
        assert history.wall_time > 0

    def test_fixture_classifier_beats_chance(self, tiny_classifier,
                                             tiny_test_set):
        accuracy = float((tiny_classifier.predict(tiny_test_set.images)
                          == tiny_test_set.labels).mean())
        assert accuracy > 0.6

    def test_evaluate_helper(self, tiny_classifier, tiny_test_set):
        trainer = ClassifierTrainer.__new__(ClassifierTrainer)
        trainer.model = tiny_classifier
        assert 0.0 <= trainer.evaluate(tiny_test_set) <= 1.0

    def test_train_classifier_sets_eval_mode(self, tiny_train_set):
        model = train_classifier(tiny_train_set, epochs=1, width=8)
        assert not model.training
