"""Property-based tests (hypothesis) on core data structures & invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.manifold import ClassAssociatedManifold
from repro.ml import PCA, smote_sample
from repro.ml.metrics import accuracy_score, iou_score
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.tensor import _unbroadcast

finite_floats = st.floats(min_value=-100, max_value=100,
                          allow_nan=False, allow_infinity=False)


def small_arrays(shape):
    return arrays(np.float64, shape, elements=finite_floats)


class TestTensorAlgebraProperties:
    @given(small_arrays((3, 4)), small_arrays((3, 4)))
    @settings(max_examples=25, deadline=None)
    def test_addition_commutes(self, a, b):
        assert np.allclose((Tensor(a) + Tensor(b)).data,
                           (Tensor(b) + Tensor(a)).data)

    @given(small_arrays((2, 3)), small_arrays((2, 3)), small_arrays((2, 3)))
    @settings(max_examples=25, deadline=None)
    def test_distributivity(self, a, b, c):
        lhs = (Tensor(a) * (Tensor(b) + Tensor(c))).data
        rhs = (Tensor(a) * Tensor(b) + Tensor(a) * Tensor(c)).data
        assert np.allclose(lhs, rhs, atol=1e-8)

    @given(small_arrays((4,)))
    @settings(max_examples=25, deadline=None)
    def test_sum_matches_numpy(self, a):
        assert np.allclose(Tensor(a).sum().data, a.sum())

    @given(small_arrays((3, 5)))
    @settings(max_examples=25, deadline=None)
    def test_relu_idempotent(self, a):
        once = Tensor(a).relu()
        twice = once.relu()
        assert np.allclose(once.data, twice.data)

    @given(small_arrays((2, 4)))
    @settings(max_examples=25, deadline=None)
    def test_softmax_is_distribution(self, a):
        s = F.softmax(Tensor(a), axis=-1).data
        assert np.all(s >= 0)
        assert np.allclose(s.sum(axis=-1), 1.0)

    @given(small_arrays((3, 2)))
    @settings(max_examples=25, deadline=None)
    def test_linear_gradient_of_sum_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)

    @given(small_arrays((5, 2, 3)))
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_preserves_total(self, g):
        out = _unbroadcast(g, (2, 3))
        assert np.allclose(out, g.sum(axis=0))


class TestConvProperties:
    @given(small_arrays((1, 1, 6, 6)), small_arrays((1, 1, 3, 3)),
           st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=15, deadline=None)
    def test_conv_linearity_in_input(self, x, w, alpha):
        one = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        scaled = F.conv2d(Tensor(alpha * x), Tensor(w), padding=1).data
        assert np.allclose(scaled, alpha * one, rtol=1e-9, atol=1e-7)

    @given(small_arrays((1, 1, 4, 4)))
    @settings(max_examples=15, deadline=None)
    def test_avg_pool_preserves_mean(self, x):
        pooled = F.avg_pool2d(Tensor(x), 2).data
        assert np.allclose(pooled.mean(), x.mean(), atol=1e-9)

    @given(small_arrays((1, 1, 4, 4)))
    @settings(max_examples=15, deadline=None)
    def test_max_pool_bounded_by_max(self, x):
        pooled = F.max_pool2d(Tensor(x), 2).data
        assert pooled.max() <= x.max() + 1e-12
        assert pooled.min() >= x.min() - 1e-12

    @given(small_arrays((1, 2, 3, 3)), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_upsample_preserves_mean(self, x, scale):
        up = F.upsample_nearest2d(Tensor(x), scale).data
        assert np.allclose(up.mean(), x.mean(), atol=1e-12)


class TestManifoldProperties:
    @given(arrays(np.float64, (12, 4),
                  elements=st.floats(-10, 10, allow_nan=False)),
           st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_interpolation_endpoints_exact(self, codes, steps):
        manifold = ClassAssociatedManifold(codes, np.repeat([0, 1], 6))
        out = manifold.interpolate(codes[0], codes[-1], steps=steps)
        assert np.allclose(out[0], codes[0])
        assert np.allclose(out[-1], codes[-1])

    @given(arrays(np.float64, (12, 4),
                  elements=st.floats(-10, 10, allow_nan=False)))
    @settings(max_examples=20, deadline=None)
    def test_centroid_is_mean(self, codes):
        manifold = ClassAssociatedManifold(codes, np.repeat([0, 1], 6))
        assert np.allclose(manifold.centroid(0), codes[:6].mean(axis=0))

    @given(arrays(np.float64, (10, 3),
                  elements=st.floats(-5, 5, allow_nan=False, width=32)),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_smote_inside_bounding_box(self, points, n):
        # Degenerate all-identical points are valid SMOTE input too.
        samples = smote_sample(points, n,
                               rng=np.random.default_rng(0))
        assert samples.shape == (n, 3)
        assert np.all(samples >= points.min(axis=0) - 1e-9)
        assert np.all(samples <= points.max(axis=0) + 1e-9)


class TestPCAProperties:
    @given(arrays(np.float64, (15, 5),
                  elements=st.floats(-50, 50, allow_nan=False)))
    @settings(max_examples=20, deadline=None)
    def test_transform_centering(self, X):
        pca = PCA(2).fit(X)
        projected = pca.transform(X)
        assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-6)

    @given(arrays(np.float64, (10, 4),
                  elements=st.floats(-10, 10, allow_nan=False)))
    @settings(max_examples=20, deadline=None)
    def test_variance_ratios_in_unit_interval(self, X):
        pca = PCA(3).fit(X)
        ratios = pca.explained_variance_ratio_
        assert np.all(ratios >= -1e-12)
        assert ratios.sum() <= 1.0 + 1e-9


class TestMetricProperties:
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_accuracy_self_prediction_is_one(self, labels):
        y = np.asarray(labels)
        assert accuracy_score(y, y) == 1.0

    @given(arrays(np.float64, (6, 6), elements=st.floats(0, 1)))
    @settings(max_examples=25, deadline=None)
    def test_iou_symmetric(self, mask):
        other = np.roll(mask, 1, axis=0)
        assert iou_score(mask, other) == iou_score(other, mask)

    @given(arrays(np.float64, (6, 6), elements=st.floats(0, 1)))
    @settings(max_examples=25, deadline=None)
    def test_iou_self_is_one(self, mask):
        assert iou_score(mask, mask) == 1.0
