"""Tests for the ``repro.serve`` micro-batching, caching ExplainEngine."""

import numpy as np
import pytest

from repro.explain import GradCAMExplainer, OcclusionExplainer
from repro.serve import ExplainEngine, SaliencyCache, request_key


@pytest.fixture()
def engine(tiny_classifier):
    return ExplainEngine(
        tiny_classifier,
        {"gradcam": GradCAMExplainer(tiny_classifier),
         "occlusion": OcclusionExplainer(tiny_classifier, window=4,
                                         stride=4)},
        max_batch=3, cache_size=8)


@pytest.fixture()
def sample(tiny_test_set):
    return tiny_test_set.images, tiny_test_set.labels


class TestSaliencyCache:
    def test_lru_eviction_order(self):
        cache = SaliencyCache(capacity=2)
        keys = [("d%d" % i, "m", 0, None) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert keys[0] not in cache          # oldest evicted
        assert keys[1] in cache and keys[2] in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = SaliencyCache(capacity=2)
        a, b, c = [("d%d" % i, "m", 0, None) for i in range(3)]
        cache.put(a, 1)
        cache.put(b, 2)
        cache.get(a)                         # refresh a; b becomes oldest
        cache.put(c, 3)
        assert a in cache and b not in cache

    def test_request_key_sensitivity(self):
        image = np.zeros((1, 4, 4))
        base = request_key(image, "gradcam", 1, None)
        assert request_key(image, "gradcam", 1, None) == base
        assert request_key(image + 1, "gradcam", 1, None) != base
        assert request_key(image, "lime", 1, None) != base
        assert request_key(image, "gradcam", 0, None) != base
        assert request_key(image, "gradcam", 1, 0) != base


class TestExplainEngine:
    def test_explain_matches_direct(self, engine, tiny_classifier, sample):
        images, labels = sample
        direct = GradCAMExplainer(tiny_classifier).explain(
            images[0], int(labels[0]))
        served = engine.explain(images[0], int(labels[0]), "gradcam")
        np.testing.assert_allclose(served.saliency, direct.saliency,
                                   rtol=1e-4, atol=1e-5)

    def test_cached_saliency_is_frozen(self, engine, sample):
        """Hits share the cached object, so in-place mutation must raise
        instead of silently corrupting future hits."""
        images, labels = sample
        result = engine.explain(images[0], int(labels[0]), "gradcam")
        with pytest.raises(ValueError):
            result.saliency[0, 0] = 5.0

    def test_cache_hit_on_repeat(self, engine, sample):
        images, labels = sample
        first = engine.explain(images[0], int(labels[0]), "gradcam")
        second = engine.explain(images[0], int(labels[0]), "gradcam")
        assert second is first               # served from cache
        stats = engine.stats()
        assert stats["cache_hits"] == 1
        assert stats["batches_run"] == 1

    def test_cache_eviction_bounds_memory(self, tiny_classifier, sample):
        images, labels = sample
        engine = ExplainEngine(
            tiny_classifier, {"gradcam": GradCAMExplainer(tiny_classifier)},
            max_batch=2, cache_size=2)
        for i in range(4):
            engine.explain(images[i], int(labels[i]), "gradcam")
        stats = engine.stats()
        assert stats["cache_size"] == 2
        assert stats["cache_evictions"] == 2
        # Oldest entry re-requested -> miss, recomputed.
        engine.explain(images[0], int(labels[0]), "gradcam")
        assert engine.cache.misses >= 5

    def test_micro_batch_autoflush(self, engine, sample):
        images, labels = sample
        handles = [engine.submit(images[i], int(labels[i]), "gradcam")
                   for i in range(3)]       # max_batch=3 -> auto flush
        assert all(h.done for h in handles)
        assert engine.stats()["batches_run"] == 1
        assert engine.pending_count() == 0

    def test_submit_below_batch_stays_pending(self, engine, sample):
        images, labels = sample
        handle = engine.submit(images[0], int(labels[0]), "gradcam")
        assert not handle.done
        assert engine.pending_count("gradcam") == 1
        result = handle.result()             # demand flush
        assert result.saliency.shape == images[0].shape[1:]
        assert engine.pending_count() == 0

    def test_micro_batch_matches_per_image(self, engine, tiny_classifier,
                                           sample):
        images, labels = sample
        handles = [engine.submit(images[i], int(labels[i]), "gradcam")
                   for i in range(3)]
        direct = GradCAMExplainer(tiny_classifier)
        for i, h in enumerate(handles):
            np.testing.assert_allclose(
                h.result().saliency,
                direct.explain(images[i], int(labels[i])).saliency,
                rtol=1e-4, atol=1e-5)

    def test_queues_are_per_method(self, engine, sample):
        images, labels = sample
        engine.submit(images[0], int(labels[0]), "gradcam")
        engine.submit(images[1], int(labels[1]), "occlusion")
        assert engine.pending_count("gradcam") == 1
        assert engine.pending_count("occlusion") == 1
        engine.flush("gradcam")
        assert engine.pending_count("gradcam") == 0
        assert engine.pending_count("occlusion") == 1
        engine.flush()
        assert engine.pending_count() == 0

    def test_deadline_zero_flushes_immediately(self, tiny_classifier,
                                               sample):
        images, labels = sample
        engine = ExplainEngine(
            tiny_classifier, {"gradcam": GradCAMExplainer(tiny_classifier)},
            max_batch=16, max_delay_ms=0.0)
        handle = engine.submit(images[0], int(labels[0]), "gradcam")
        assert handle.done                   # deadline already expired

    def test_explain_batch_only_misses_hit_models(self, engine, sample):
        images, labels = sample
        engine.explain(images[0], int(labels[0]), "occlusion")
        assert engine.stats()["batches_run"] == 1
        results = engine.explain_batch(images[:3], labels[:3], "occlusion")
        assert len(results) == 3
        stats = engine.stats()
        assert stats["cache_hits"] == 1      # image 0 reused
        assert stats["batches_run"] == 2     # one more batch for the misses

    def test_unknown_method_raises(self, engine, sample):
        images, labels = sample
        with pytest.raises(KeyError):
            engine.explain(images[0], int(labels[0]), "nope")

    def test_failed_batch_stays_queued_for_retry(self, tiny_classifier,
                                                 sample):
        """A raising explain_batch surfaces its error from the flush and
        leaves the requests queued, so a retry can still resolve them."""
        from repro.explain.base import Explainer, SaliencyResult

        class Flaky(Explainer):
            name = "flaky"
            calls = 0

            def explain_batch(self, images, labels, target_labels=None):
                Flaky.calls += 1
                if Flaky.calls == 1:
                    raise RuntimeError("transient backend failure")
                return [SaliencyResult(np.zeros(images.shape[2:]), int(y))
                        for y in labels]

        images, labels = sample
        engine = ExplainEngine(tiny_classifier, {"flaky": Flaky()},
                               max_batch=4)
        handle = engine.submit(images[0], int(labels[0]), "flaky")
        with pytest.raises(RuntimeError, match="transient"):
            handle.result()
        assert engine.pending_count("flaky") == 1
        assert handle.result().label == int(labels[0])   # retry succeeds
        assert engine.pending_count("flaky") == 0

    def test_submit_copies_image_buffer(self, engine, tiny_classifier,
                                        sample):
        """A caller reusing its buffer between submit and flush must not
        change what the queued request (or the cache) sees."""
        images, labels = sample
        buf = images[0].copy()
        handle = engine.submit(buf, int(labels[0]), "gradcam")
        buf[:] = 0.0                         # mutate before flush
        expected = GradCAMExplainer(tiny_classifier).explain(
            images[0], int(labels[0]))
        np.testing.assert_allclose(handle.result().saliency,
                                   expected.saliency, rtol=1e-4, atol=1e-5)

    def test_mixed_target_micro_batch(self, engine, sample):
        """Targeted and untargeted requests sharing one micro-batch must
        keep their own target metadata (-1 sentinel never leaks)."""
        images, labels = sample
        targeted = engine.submit(images[0], int(labels[0]), "gradcam",
                                 target_label=0)
        untargeted = engine.submit(images[1], int(labels[1]), "gradcam")
        engine.flush("gradcam")
        assert targeted.result().target_label == 0
        assert untargeted.result().target_label is None


class TestResolveTargets:
    def test_mixed_sentinel_filled_with_defaults(self):
        from repro.explain.base import resolve_targets
        labels = np.array([1, 0, 2])
        mixed = np.array([0, -1, -1])
        out = resolve_targets(labels, mixed, num_classes=3)
        # Explicit target kept; sentinels resolve per image (0 for
        # abnormal labels, 1 for the normal class).
        assert list(out) == [0, 1, 0]

    def test_sentinel_passthrough_without_classes(self):
        from repro.explain.base import resolve_targets, target_or_none
        out = resolve_targets(np.array([1, 0]), np.array([2, -1]))
        assert list(out) == [2, -1]
        assert target_or_none(out, 0) == 2
        assert target_or_none(out, 1) is None

    def test_input_array_not_mutated(self):
        from repro.explain.base import resolve_targets
        mixed = np.array([-1, 1])
        resolve_targets(np.array([1, 1]), mixed, num_classes=2)
        assert list(mixed) == [-1, 1]

    def test_legacy_fallback_maps_sentinel_to_none(self):
        from repro.explain.base import Explainer, SaliencyResult
        captured = []

        class Legacy(Explainer):
            def explain(self, image, label, target_label=None):
                captured.append(target_label)
                return SaliencyResult(np.zeros(image.shape[1:]), label,
                                      target_label)

        Legacy().explain_batch(np.zeros((2, 1, 4, 4)), np.array([0, 1]),
                               np.array([1, -1]))
        assert captured == [1, None]
