"""Batch-vs-single parity suite for the batched-first explainer contract.

For every registered Table II method (plus occlusion), explaining a
mixed-label batch through ``explain_batch`` must agree with per-image
``explain`` calls to float32 tolerance: the batched forward/backward
shares conv/GEMM calls but the per-sample math is identical because loss
terms are independent across the batch axis.
"""

import numpy as np
import pytest

from repro.explain import (CAEExplainer, FullGradExplainer, GradCAMExplainer,
                           ICAMExplainer, LAGANExplainer, LimeExplainer,
                           OcclusionExplainer, SimpleFullGradExplainer,
                           SmoothFullGradExplainer, StylexExplainer,
                           TABLE2_METHODS, TSCAMExplainer, train_icam,
                           train_lagan, train_stylex, train_tscam)

def assert_saliency_close(a: np.ndarray, b: np.ndarray,
                          tol: float = 1e-3) -> None:
    """Peak-relative closeness: saliency maps are consumed through
    rankings and [0, 1] normalisation, so the meaningful error measure is
    absolute difference relative to the map's peak.  Float32 GEMMs over
    different batch shapes round differently; deep decode chains amplify
    that by ~100x, which still sits far below 1e-3 of the peak."""
    scale = max(float(np.abs(b).max()), 1e-9)
    np.testing.assert_allclose(a / scale, b / scale, rtol=0, atol=tol)


@pytest.fixture(scope="module")
def parity_models(tiny_train_set, tiny_classifier, tiny_config):
    """Auxiliary models trained once for the whole parity suite."""
    return {
        "tscam": train_tscam(tiny_train_set, epochs=1, dim=8),
        "stylex": train_stylex(tiny_train_set, tiny_classifier, epochs=1),
        "lagan": train_lagan(tiny_train_set, tiny_classifier, epochs=1),
        "icam": train_icam(tiny_train_set, iterations=3, batch_size=2,
                           config=tiny_config),
    }


@pytest.fixture(scope="module")
def make_explainer(parity_models, tiny_classifier, tiny_cae, tiny_manifold,
                   tiny_train_set):
    """Factory returning a *fresh* explainer per call, so stateful
    internals (LIME's rng) start identically for batched and per-image
    runs."""
    icam_model = parity_models["icam"]
    icam_manifold = icam_model.build_manifold(tiny_train_set)

    factories = {
        "lime": lambda: LimeExplainer(tiny_classifier, grid=4, n_samples=20,
                                      seed=0),
        "occlusion": lambda: OcclusionExplainer(tiny_classifier, window=4,
                                                stride=4),
        "gradcam": lambda: GradCAMExplainer(tiny_classifier),
        "fullgrad": lambda: FullGradExplainer(tiny_classifier),
        "simple_fullgrad": lambda: SimpleFullGradExplainer(tiny_classifier),
        "smooth_fullgrad": lambda: SmoothFullGradExplainer(
            tiny_classifier, n_samples=2, seed=3),
        "tscam": lambda: TSCAMExplainer(parity_models["tscam"]),
        "stylex": lambda: StylexExplainer(parity_models["stylex"],
                                          tiny_classifier, steps=3),
        "lagan": lambda: LAGANExplainer(parity_models["lagan"],
                                        tiny_classifier),
        "icam": lambda: ICAMExplainer(icam_model, icam_manifold,
                                      tiny_train_set.num_classes),
        "cae": lambda: CAEExplainer(tiny_cae, tiny_manifold, tiny_classifier,
                                    steps=4),
    }

    def make(name):
        return factories[name]()

    return make


@pytest.fixture(scope="module")
def mixed_batch(tiny_train_set):
    """Three images mixing both classes (batched paths must not assume a
    homogeneous batch)."""
    idx = np.concatenate([tiny_train_set.indices_of_class(1)[:2],
                          tiny_train_set.indices_of_class(0)[:1]])
    return tiny_train_set.images[idx], tiny_train_set.labels[idx]


class TestBatchSingleParity:
    @pytest.mark.parametrize("name", TABLE2_METHODS + ("occlusion",))
    def test_parity(self, make_explainer, mixed_batch, name):
        images, labels = mixed_batch
        batched = make_explainer(name).explain_batch(images, labels)
        singles = [make_explainer(name).explain(images[i], int(labels[i]))
                   for i in range(len(images))]
        assert len(batched) == len(images)
        for b, s in zip(batched, singles):
            assert b.label == s.label
            assert b.target_label == s.target_label
            assert_saliency_close(b.saliency, s.saliency)

    @pytest.mark.parametrize("name", ("gradcam", "fullgrad", "cae"))
    def test_parity_with_targets(self, make_explainer, mixed_batch, name):
        images, labels = mixed_batch
        targets = np.where(labels == 0, 1, 0)
        batched = make_explainer(name).explain_batch(images, labels, targets)
        singles = [make_explainer(name).explain(images[i], int(labels[i]),
                                                int(targets[i]))
                   for i in range(len(images))]
        for b, s in zip(batched, singles):
            assert b.target_label == s.target_label
            assert_saliency_close(b.saliency, s.saliency)

    def test_gradcam_batch_differs_across_samples(self, make_explainer,
                                                  mixed_batch):
        """Per-sample gradients must not bleed across the batch axis."""
        images, labels = mixed_batch
        results = make_explainer("gradcam").explain_batch(images, labels)
        assert not np.allclose(results[0].saliency, results[2].saliency)


#: Methods whose hot path compiles into an execution plan; the rest have
#: data-dependent control flow (sampling, sweeps, optimisation loops).
PLAN_ELIGIBLE = ("gradcam", "fullgrad", "simple_fullgrad",
                 "smooth_fullgrad", "tscam", "lagan")


class TestPlanTapeParity:
    """Compiled-plan replay must reproduce the tape for every eligible
    method; ineligible methods must say so loudly."""

    @pytest.mark.parametrize("name", TABLE2_METHODS + ("occlusion",))
    def test_plan_vs_tape(self, make_explainer, mixed_batch, name):
        images, labels = mixed_batch
        explainer = make_explainer(name)
        if name not in PLAN_ELIGIBLE:
            assert not explainer.plan_eligible
            with pytest.raises(NotImplementedError):
                explainer.compile_plan(images, labels)
            return
        assert explainer.plan_eligible
        plan = explainer.compile_plan(images, labels)
        tape = explainer.explain_batch(images, labels)
        planned = explainer.explain_batch_planned(plan, images, labels)
        # Second replay through the same arena: results must not alias
        # buffers the next replay overwrites.
        replayed = explainer.explain_batch_planned(plan, images, labels)
        assert len(planned) == len(images)
        for t, p, p2 in zip(tape, planned, replayed):
            assert p.label == t.label
            assert p.target_label == t.target_label
            assert_saliency_close(p.saliency, t.saliency)
            np.testing.assert_array_equal(p.saliency, p2.saliency)

    def test_plan_mismatch_on_shape_change(self, make_explainer,
                                           mixed_batch):
        from repro.nn.plan import PlanMismatch
        images, labels = mixed_batch
        explainer = make_explainer("gradcam")
        plan = explainer.compile_plan(images, labels)
        with pytest.raises(PlanMismatch):
            explainer.explain_batch_planned(plan, images[:2], labels[:2])


class TestSaliencyResultRobustness:
    def test_normalized_handles_nan(self):
        from repro.explain import SaliencyResult
        s = np.ones((4, 4))
        s[0, 0] = np.nan
        s[1, 1] = 2.0
        normed = SaliencyResult(s, label=0).normalized()
        assert np.isfinite(normed).all()
        assert normed.max() == pytest.approx(1.0)
        assert normed[0, 0] == 0.0

    def test_normalized_negative_only_map(self):
        from repro.explain import SaliencyResult
        normed = SaliencyResult(-np.ones((4, 4)), label=0).normalized()
        assert np.allclose(normed, 0.0)

    def test_normalized_mixed_sign_clips(self):
        from repro.explain import SaliencyResult
        s = np.array([[-5.0, 0.0], [1.0, 2.0]])
        normed = SaliencyResult(s, label=0).normalized()
        assert normed[0, 0] == 0.0            # clipped, not rescaled high
        assert normed[1, 1] == pytest.approx(1.0)

    def test_top_pixels_tie_break_deterministic(self):
        from repro.explain import SaliencyResult
        s = np.zeros((3, 3), dtype=np.float32)
        s[0, 1] = s[2, 0] = s[1, 2] = 1.0     # three-way tie
        top = SaliencyResult(s, label=0).top_pixels(3)
        # Stable sort: ties resolve in row-major pixel order.
        assert [list(p) for p in top] == [[0, 1], [1, 2], [2, 0]]
