"""Unit tests for Module mechanics and layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestModuleMechanics:
    def test_parameter_discovery(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        params = layer.parameters()
        assert len(params) == 2     # weight + bias
        assert all(p.requires_grad for p in params)

    def test_nested_module_parameters(self, rng):
        net = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(),
                            nn.Linear(4, 2, rng=rng))
        assert len(net.parameters()) == 4

    def test_shared_parameter_counted_once(self, rng):
        a = nn.Linear(3, 3, rng=rng)

        class Tied(nn.Module):
            def __init__(self):
                super().__init__()
                self.first = a
                self.second = a
        assert len(Tied().parameters()) == 2

    def test_named_parameters_paths(self, rng):
        net = nn.Sequential(nn.Linear(2, 2, rng=rng))
        names = [n for n, _ in net.named_parameters()]
        assert "layer0.weight" in names
        assert "layer0.bias" in names

    def test_zero_grad_clears(self, rng):
        layer = nn.Linear(3, 1, rng=rng)
        layer(Tensor(rng.standard_normal((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self, rng):
        net = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2, rng=rng))
        net.eval()
        assert not net.layers[0].training
        net.train()
        assert net.layers[0].training

    def test_num_parameters(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_state_dict_roundtrip(self, rng):
        a = nn.Linear(3, 2, rng=np.random.default_rng(1))
        b = nn.Linear(3, 2, rng=np.random.default_rng(2))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_load_missing_key_raises(self, rng):
        layer = nn.Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({})

    def test_load_shape_mismatch_raises(self, rng):
        layer = nn.Linear(2, 2, rng=rng)
        bad = {k: np.zeros((9, 9)) for k in layer.state_dict()}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)


class TestLinear:
    def test_forward_value(self):
        layer = nn.Linear(2, 1, rng=np.random.default_rng(0))
        layer.weight.data[...] = [[2.0, -1.0]]
        layer.bias.data[...] = [0.5]
        out = layer(Tensor(np.array([[1.0, 3.0]])))
        assert out.data[0, 0] == pytest.approx(2 - 3 + 0.5)

    def test_no_bias(self, rng):
        layer = nn.Linear(2, 3, rng=rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradient_updates_loss(self, rng):
        layer = nn.Linear(4, 1, rng=rng)
        x = Tensor(rng.standard_normal((8, 4)))
        y = Tensor(rng.standard_normal((8, 1)))
        opt = nn.SGD(layer.parameters(), lr=0.1)
        first = None
        for _ in range(50):
            loss = nn.mse_loss(layer(x), y)
            if first is None:
                first = loss.item()
            layer.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5


class TestConvLayers:
    def test_conv2d_shape(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_convtranspose2d_shape(self, rng):
        layer = nn.ConvTranspose2d(4, 2, 4, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 4, 4, 4))))
        assert out.shape == (1, 2, 8, 8)


class TestNorms:
    def test_instance_norm_normalises_per_instance(self, rng):
        norm = nn.InstanceNorm2d(3)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)) * 5 + 3)
        out = norm(x).data
        assert np.allclose(out.mean(axis=(2, 3)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(2, 3)), 1.0, atol=1e-2)

    def test_instance_norm_affine_params(self):
        norm = nn.InstanceNorm2d(3, affine=True)
        assert len(norm.parameters()) == 2
        assert len(nn.InstanceNorm2d(3, affine=False).parameters()) == 0

    def test_batch_norm_train_normalises_batch(self, rng):
        norm = nn.BatchNorm2d(2)
        x = Tensor(rng.standard_normal((8, 2, 4, 4)) * 3 + 1)
        out = norm(x).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_batch_norm_updates_running_stats(self, rng):
        norm = nn.BatchNorm2d(2)
        before = norm.running_mean.copy()
        norm(Tensor(rng.standard_normal((8, 2, 4, 4)) + 5))
        assert not np.allclose(norm.running_mean, before)

    def test_batch_norm_eval_uses_running_stats(self, rng):
        norm = nn.BatchNorm2d(2)
        for _ in range(50):
            norm(Tensor(rng.standard_normal((16, 2, 4, 4)) + 5))
        norm.eval()
        x = Tensor(np.full((4, 2, 4, 4), 5.0))
        out = norm(x).data
        assert np.abs(out).max() < 1.5   # ~ (5 - running_mean)/std ~ 0

    def test_batch_norm_stats_in_state_dict(self):
        norm = nn.BatchNorm2d(2)
        state = norm.state_dict()
        assert "running_mean" in state
        assert "running_var" in state

    def test_layer_norm_normalises_last_dim(self, rng):
        norm = nn.LayerNorm(16)
        x = Tensor(rng.standard_normal((4, 7, 16)) * 4 + 2)
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)


class TestActivationsMisc:
    def test_relu_clips_negative(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_slope(self):
        out = nn.LeakyReLU(0.1)(Tensor(np.array([-10.0])))
        assert out.data[0] == pytest.approx(-1.0)

    def test_tanh_sigmoid_ranges(self, rng):
        x = Tensor(rng.standard_normal(100) * 10)
        assert np.all(np.abs(nn.Tanh()(x).data) <= 1.0)
        sig = nn.Sigmoid()(x).data
        assert np.all((sig >= 0) & (sig <= 1))

    def test_flatten_layer(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_pool_layers(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)))
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.GlobalAvgPool2d()(x).shape == (1, 2)
        assert nn.Upsample(2)(x).shape == (1, 2, 16, 16)

    def test_dropout_eval_identity(self, rng):
        drop = nn.Dropout(0.9, rng=rng)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(drop(x).data, 1.0)

    def test_sequential_iteration_and_indexing(self, rng):
        net = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert isinstance(net[0], nn.ReLU)
        assert len(list(net)) == 2
