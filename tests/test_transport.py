"""Shared-memory transport suite: pipe-vs-shm parity across every
Table II method, arena growth and generation retirement, stale/oversize
fallbacks to the pipe codec, worker-crash recovery, and — the resource
contract — zero leaked ``/dev/shm`` segments after shutdown *or* crash.
"""

import glob
import os
import threading

import numpy as np
import pytest

from repro.explain import (CAEExplainer, FullGradExplainer, GradCAMExplainer,
                           ICAMExplainer, LAGANExplainer, LimeExplainer,
                           OcclusionExplainer, SimpleFullGradExplainer,
                           SmoothFullGradExplainer, StylexExplainer,
                           TABLE2_METHODS, TSCAMExplainer, train_icam,
                           train_lagan, train_stylex, train_tscam)
from repro.serve import (EngineSpec, ExplainEngine, ProcessExecutor,
                         WorkerCrashed, demo_spec, have_shared_memory,
                         resolve_transport)
from repro.serve.transport import (ENV_TRANSPORT, ShmArena, segment_base)
from repro.serve.worker import decode_results, worker_main

from test_explain_batch import assert_saliency_close

pytestmark = pytest.mark.skipif(
    not have_shared_memory(), reason="multiprocessing.shared_memory missing")

_HAVE_DEV_SHM = os.path.isdir("/dev/shm")


def _segments(prefix: str):
    """Live ``/dev/shm`` entries belonging to one arena prefix."""
    return glob.glob(f"/dev/shm/{prefix}*")


def _arena_prefixes(executor: ProcessExecutor):
    return [channel.arena.prefix for channel in executor._all
            if channel.arena is not None]


def _assert_no_leaks(prefixes) -> None:
    if not _HAVE_DEV_SHM:
        return
    for prefix in prefixes:
        assert not _segments(prefix), \
            f"leaked shared-memory segments: {_segments(prefix)}"


def _images(n: int, side: int = 16, channels: int = 1) -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.standard_normal((n, channels, side, side)) \
        .astype(np.float32)


class TestResolveTransport:
    def test_explicit_choice_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_TRANSPORT, "pipe")
        assert resolve_transport("shm") == "shm"
        assert resolve_transport("pipe") == "pipe"

    def test_auto_honours_env(self, monkeypatch):
        monkeypatch.setenv(ENV_TRANSPORT, "pipe")
        assert resolve_transport("auto") == "pipe"
        monkeypatch.setenv(ENV_TRANSPORT, "shm")
        assert resolve_transport("auto") == "shm"

    def test_auto_defaults_to_shm_when_available(self, monkeypatch):
        monkeypatch.delenv(ENV_TRANSPORT, raising=False)
        assert resolve_transport("auto") == "shm"

    def test_unknown_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("tcp")
        monkeypatch.setenv(ENV_TRANSPORT, "smoke-signals")
        with pytest.raises(ValueError, match=ENV_TRANSPORT):
            resolve_transport("auto")

    def test_segment_base_strips_generation(self):
        assert segment_base("rtxab-0w1s0o-g17") == "rtxab-0w1s0o"
        assert segment_base("rtxab-0w1s0o-g18") == "rtxab-0w1s0o"


class TestArenaGrowth:
    def test_grows_geometrically_and_retires_old_segments(self):
        arena = ShmArena("rtxtest-growth", slots=2, initial_bytes=4096)
        try:
            slot = arena.acquire()
            for side in (8, 16, 32, 64):
                arena.encode(slot, _images(4, side=side))
            snap = arena.stats.snapshot()
            assert snap["arena_grows"] >= 2
            if _HAVE_DEV_SHM:
                # Old generations are unlinked at grow time: at most one
                # out + one ret segment per slot ever live, and only one
                # slot was touched.
                assert len(_segments("rtxtest-growth")) == 2
        finally:
            arena.close()
        _assert_no_leaks(["rtxtest-growth"])
        arena.close()                      # idempotent

    def test_ret_need_hint_grows_return_segment(self):
        arena = ShmArena("rtxtest-hint", slots=1, initial_bytes=4096)
        try:
            slot = arena.acquire()
            arena.encode(slot, _images(2, side=8))
            before = slot.ret.size
            arena.release(slot)
            slot = arena.acquire()
            arena.note_ret_need(slot, before * 8)
            _, (_, ret_size) = arena.encode(slot, _images(2, side=8))
            assert ret_size >= before * 8
        finally:
            arena.close()
        _assert_no_leaks(["rtxtest-hint"])


@pytest.fixture(scope="module")
def table2_pools(tiny_train_set, tiny_classifier, tiny_cae, tiny_manifold,
                 tiny_config):
    """One single-worker pool per transport, both materializing the
    *same* prebuilt Table II explainer suite (trained once here,
    shipped pickled through the spec), so any divergence between the
    pools is the transport's fault and nothing else's."""
    models = {
        "tscam": train_tscam(tiny_train_set, epochs=1, dim=8),
        "stylex": train_stylex(tiny_train_set, tiny_classifier, epochs=1),
        "lagan": train_lagan(tiny_train_set, tiny_classifier, epochs=1),
        "icam": train_icam(tiny_train_set, iterations=3, batch_size=2,
                           config=tiny_config),
    }
    icam_manifold = models["icam"].build_manifold(tiny_train_set)
    explainers = {
        "lime": LimeExplainer(tiny_classifier, grid=4, n_samples=20,
                              seed=0),
        "occlusion": OcclusionExplainer(tiny_classifier, window=4,
                                        stride=4),
        "gradcam": GradCAMExplainer(tiny_classifier),
        "fullgrad": FullGradExplainer(tiny_classifier),
        "simple_fullgrad": SimpleFullGradExplainer(tiny_classifier),
        "smooth_fullgrad": SmoothFullGradExplainer(tiny_classifier,
                                                   n_samples=2, seed=3),
        "tscam": TSCAMExplainer(models["tscam"]),
        "stylex": StylexExplainer(models["stylex"], tiny_classifier,
                                  steps=3),
        "lagan": LAGANExplainer(models["lagan"], tiny_classifier),
        "icam": ICAMExplainer(models["icam"], icam_manifold,
                              tiny_train_set.num_classes),
        "cae": CAEExplainer(tiny_cae, tiny_manifold, tiny_classifier,
                            steps=4),
    }
    spec = EngineSpec("transport_spec_util:prebuilt",
                      kwargs=dict(explainers=explainers))
    shm = ProcessExecutor(spec, workers=1, transport="shm")
    pipe = ProcessExecutor(spec, workers=1, transport="pipe")
    yield shm, pipe
    prefixes = _arena_prefixes(shm)
    shm.shutdown()
    pipe.shutdown()
    _assert_no_leaks(prefixes)


@pytest.fixture(scope="module")
def parity_batch(tiny_train_set):
    idx = np.concatenate([tiny_train_set.indices_of_class(1)[:2],
                          tiny_train_set.indices_of_class(0)[:1]])
    return (tiny_train_set.images[idx].astype(np.float32),
            tiny_train_set.labels[idx].astype(np.int64))


class TestPipeShmParity:
    @pytest.mark.parametrize("name", TABLE2_METHODS + ("occlusion",))
    def test_parity(self, table2_pools, parity_batch, name):
        shm, pipe = table2_pools
        images, labels = parity_batch
        via_shm, _ = shm.run_batch(name, images, labels, None)
        via_pipe, _ = pipe.run_batch(name, images, labels, None)
        assert len(via_shm) == len(via_pipe) == len(images)
        for a, b in zip(via_shm, via_pipe):
            assert a.label == b.label
            assert a.target_label == b.target_label
            assert_saliency_close(a.saliency, b.saliency)

    def test_parity_with_targets(self, table2_pools, parity_batch):
        shm, pipe = table2_pools
        images, labels = parity_batch
        targets = np.where(labels == 0, 1, 0).astype(np.int64)
        via_shm, _ = shm.run_batch("gradcam", images, labels, targets)
        via_pipe, _ = pipe.run_batch("gradcam", images, labels, targets)
        for a, b in zip(via_shm, via_pipe):
            assert a.target_label == b.target_label
            assert_saliency_close(a.saliency, b.saliency)

    def test_pipe_pool_has_no_arenas(self, table2_pools):
        _, pipe = table2_pools
        assert pipe.transport == "pipe"
        assert all(channel.arena is None for channel in pipe._all)
        stats = pipe.transport_stats()
        assert stats["mode"] == "pipe"
        assert stats["shm_batches"] == 0
        assert stats["pipe_payload_bytes"] > 0
        assert stats["arena_bytes"] == 0

    def test_shm_pool_moved_no_pipe_payload(self, table2_pools):
        shm, _ = table2_pools
        assert shm.transport == "shm"
        stats = shm.transport_stats()
        assert stats["mode"] == "shm"
        assert stats["shm_batches"] > 0
        assert stats["shm_bytes_moved"] > 0
        assert stats["copies_avoided"] > 0
        # Every payload crossed through the arenas: nothing fell back.
        assert stats["pipe_payload_bytes"] == 0
        assert stats["fallbacks"] == 0


@pytest.fixture(scope="module")
def demo_pools():
    """Two shared 2-worker demo pools (one per transport) for the
    engine-level tests.  Engines built on them must not be closed —
    the fixture owns the shutdown and the leak assertion."""
    spec = demo_spec(("gradcam", "occlusion", "echo", "slow"),
                     slow_ms=50.0)
    classifier, explainers = spec.materialize()
    shm = ProcessExecutor(spec, workers=2, transport="shm")
    pipe = ProcessExecutor(spec, workers=2, transport="pipe")
    yield classifier, explainers, shm, pipe
    prefixes = _arena_prefixes(shm)
    shm.shutdown()
    pipe.shutdown()
    _assert_no_leaks(prefixes)
    assert all(not c.process.is_alive()
               for ex in (shm, pipe) for c in ex._all)


class TestEngineTransport:
    def test_engine_parity_and_stats_sections(self, demo_pools):
        classifier, explainers, shm, pipe = demo_pools
        images = _images(6)
        labels = np.array([0, 1, 0, 1, 0, 1])
        results = {}
        for executor in (shm, pipe):
            engine = ExplainEngine(classifier, explainers, max_batch=4,
                                   executor=executor)
            results[executor.transport] = engine.explain_batch(
                images, labels, "gradcam")
            transport = engine.stats()["transport"]
            assert transport["mode"] == executor.transport
        for a, b in zip(results["shm"], results["pipe"]):
            assert a.label == b.label
            assert_saliency_close(a.saliency, b.saliency)

    def test_echo_payload_roundtrip_is_exact(self, demo_pools):
        # The echo method is pure payload: byte-exact round-trip through
        # the arenas (float32 in, float32 mean out — no method noise).
        _, _, shm, _ = demo_pools
        images = _images(5, side=24)
        labels = np.zeros(5, dtype=np.int64)
        results, _ = shm.run_batch("echo", list(images), labels, None)
        for i, result in enumerate(results):
            np.testing.assert_array_equal(result.saliency,
                                          images[i].mean(axis=0))

    def test_transport_env_knob_reaches_executor(self, monkeypatch):
        monkeypatch.setenv(ENV_TRANSPORT, "pipe")
        executor = ProcessExecutor(demo_spec(("gradcam",)), workers=1)
        try:
            assert executor.transport == "pipe"
            assert all(c.arena is None for c in executor._all)
        finally:
            executor.shutdown()

    def test_double_buffering_overlaps_sends(self):
        # One worker, two slots: two concurrent batches of the sleeper
        # must double-buffer onto the same channel (the second send
        # lands while the first still computes).
        executor = ProcessExecutor(demo_spec(("slow",), slow_ms=100.0),
                                   workers=1, transport="shm")
        prefixes = _arena_prefixes(executor)
        try:
            images = _images(2)
            labels = np.zeros(2, dtype=np.int64)
            outcomes = []

            def run():
                outcomes.append(executor.run_batch("slow", images, labels,
                                                   None))

            threads = [threading.Thread(target=run) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(outcomes) == 2
            stats = executor.transport_stats()
            assert stats["sends"] == 2
            assert stats["overlapped_sends"] >= 1
            assert stats["overlap_occupancy"] > 0
        finally:
            executor.shutdown()
        _assert_no_leaks(prefixes)


class TestCrashHygiene:
    def test_crash_mid_batch_retries_on_survivor_and_unlinks(self):
        spec = demo_spec(("exit", "gradcam"))
        classifier, explainers = spec.materialize()
        executor = ProcessExecutor(spec, workers=2, transport="shm")
        prefixes = _arena_prefixes(executor)
        engine = ExplainEngine(classifier, explainers, max_batch=1,
                               executor=executor)
        try:
            engine.submit_async(_images(1)[0], 0, "exit")
            with pytest.raises(WorkerCrashed):
                engine.drain()             # survivor remains: not Overloaded
            assert executor.alive_workers == 1
            # The dead channel was reaped: its arena segments are gone
            # while the survivor's stay live.
            if _HAVE_DEV_SHM:
                dead = [c for c in executor._all if c.dead]
                assert len(dead) == 1 and dead[0].reaped
                assert not _segments(dead[0].arena.prefix)
            # The engine's requeue-and-retry lands new work on the
            # surviving worker, still over shared memory.
            result = engine.explain(_images(1)[0], 1, "gradcam")
            assert result.label == 1
            assert executor.transport_stats()["shm_batches"] >= 1
        finally:
            executor.shutdown()
        _assert_no_leaks(prefixes)
        assert all(not c.process.is_alive() for c in executor._all)

    def test_shutdown_unlinks_every_segment(self):
        executor = ProcessExecutor(demo_spec(("echo",)), workers=2,
                                   transport="shm")
        prefixes = _arena_prefixes(executor)
        images = _images(4)
        labels = np.zeros(4, dtype=np.int64)
        executor.run_batch("echo", images, labels, None)
        if _HAVE_DEV_SHM:
            assert any(_segments(prefix) for prefix in prefixes)
        executor.shutdown()
        _assert_no_leaks(prefixes)
        executor.shutdown()                # idempotent


class TestWorkerFallbacks:
    """Drive ``worker_main`` directly (in a thread, over a local pipe)
    to pin the fallback legs of the protocol without having to corrupt
    a live pool's arenas."""

    @pytest.fixture()
    def worker(self):
        import multiprocessing
        parent, child = multiprocessing.Pipe()
        thread = threading.Thread(
            target=worker_main, args=(child, demo_spec(("echo",))),
            daemon=True)
        thread.start()
        kind, _pid = parent.recv()
        assert kind == "ready"
        yield parent
        try:
            parent.send(("stop",))
        except (OSError, BrokenPipeError):
            pass
        thread.join(timeout=5)

    def test_stale_header_falls_back_to_slot_routed_pipe(self, worker):
        images = _images(2, side=8)
        labels = np.zeros(2, dtype=np.int64)
        out_desc = ("rtx-no-such-segment-g1", 4096,
                    tuple(images.shape), "float32")
        worker.send(("shm_batch", 0, "echo", out_desc,
                     ("rtx-no-such-ret-g1", 4096), labels, None, None))
        assert worker.recv() == ("shm_stale", 0)
        worker.send(("batch_slot", 0, "echo", images, labels, None, None))
        kind, slot, payload, _batch_ms, need = worker.recv()
        assert (kind, slot, need) == ("ok_pipe", 0, 0)
        results = decode_results(payload)
        np.testing.assert_allclose(results[1].saliency,
                                   images[1].mean(axis=0), rtol=1e-6)

    def test_oversized_reply_falls_back_with_byte_hint(self, worker):
        images = _images(2, side=8)
        labels = np.zeros(2, dtype=np.int64)
        arena = ShmArena("rtxtest-oversize", slots=1)
        try:
            slot = arena.acquire()
            out_desc, ret_desc = arena.encode(slot, images)
            # Lie about the return segment's capacity: the worker must
            # refuse the in-place write and pipe the payload back with
            # the byte count the parent turns into a growth hint.
            worker.send(("shm_batch", 0, "echo", out_desc,
                         (ret_desc[0], 8), labels, None, None))
            kind, slot_index, payload, _batch_ms, need = worker.recv()
            assert (kind, slot_index) == ("ok_pipe", 0)
            assert need == 2 * 8 * 8 * 4
            results = decode_results(payload)
            np.testing.assert_allclose(results[0].saliency,
                                       images[0].mean(axis=0), rtol=1e-6)
        finally:
            arena.close()
        _assert_no_leaks(["rtxtest-oversize"])

    def test_legacy_pipe_framing_unchanged(self, worker):
        # The PR 5 codec must keep working byte-for-byte: same message
        # kinds in, same reply shape out.
        from repro.serve.worker import encode_batch
        images = _images(3, side=8)
        labels = np.zeros(3, dtype=np.int64)
        worker.send(encode_batch("echo", images, labels, None))
        kind, payload, batch_ms = worker.recv()
        assert kind == "ok"
        assert len(decode_results(payload)) == 3
        assert batch_ms >= 0.0
