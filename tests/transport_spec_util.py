"""Spec-factory helper importable from spawned worker processes.

The transport parity suite trains every Table II explainer **once** in
the parent and ships the finished objects through ``EngineSpec`` kwargs
(they pickle); each single-worker pool then materializes bit-identical
replicas without retraining.  The factory must live in a module the
spawned interpreter can import by name — a test-class local would not
resolve — and the tests directory rides into the worker via the
inherited ``sys.path``.
"""


def prebuilt(explainers):
    return explainers
