"""Unit tests for the evaluation harness."""

import numpy as np
import pytest

from repro.eval import (DegradationCurve, class_reassignment_rate,
                        decision_surface, evaluate_methods,
                        false_positive_case, gradient_descent_path,
                        greedy_walk_path, guided_path, latent_separability,
                        localization_scores, perturbation_curve,
                        pointing_game, probe_path, saliency_iou,
                        saliency_time_ms, smote_validity, time_all_methods,
                        trap_demo_2d)
from repro.eval.perturbation import _select_patch_centers
from repro.explain import CAEExplainer, GradCAMExplainer


@pytest.fixture(scope="module")
def cae_explainer(tiny_cae, tiny_manifold, tiny_classifier):
    return CAEExplainer(tiny_cae, tiny_manifold, tiny_classifier, steps=4)


class TestDegradationCurve:
    def test_aopc_pd_from_drops(self):
        curve = DegradationCurve(np.array([0.1, 0.3, 0.2]))
        assert curve.aopc == pytest.approx(0.2)
        assert curve.pd == pytest.approx(0.3)

    def test_patch_center_selection_non_overlapping(self):
        saliency = np.zeros((8, 8))
        saliency[2, 2] = 5.0
        saliency[2, 3] = 4.0     # adjacent, should be suppressed
        saliency[6, 6] = 3.0
        centers = _select_patch_centers(saliency, 2, patch=3)
        assert centers[0] == (2, 2)
        assert centers[1] == (6, 6)

    def test_perturbation_curve_runs(self, tiny_classifier, tiny_test_set):
        explainer = GradCAMExplainer(tiny_classifier)
        curve = perturbation_curve(explainer, tiny_classifier,
                                   tiny_test_set.images[:3],
                                   tiny_test_set.labels[:3],
                                   n_patches=4, patch=3)
        assert curve.drops.shape == (4,)
        assert np.isfinite(curve.drops).all()

    def test_informed_beats_random_saliency(self, tiny_classifier,
                                            tiny_test_set):
        """An explainer that knows the lesion mask must degrade the
        classifier faster than a constant-saliency explainer."""
        from repro.explain.base import Explainer, SaliencyResult

        masks = {i: tiny_test_set.masks[i]
                 for i in range(len(tiny_test_set))}
        images = tiny_test_set.images
        lookup = {images[i].tobytes(): i for i in range(len(images))}

        class OracleExplainer(Explainer):
            def explain(self, image, label, target_label=None):
                idx = lookup[image.tobytes()]
                return SaliencyResult(masks[idx] + 1e-6, label)

        class ConstantExplainer(Explainer):
            def explain(self, image, label, target_label=None):
                return SaliencyResult(np.ones(image.shape[1:]), label)

        abnormal = tiny_test_set.indices_of_class(1)[:4]
        x, y = images[abnormal], tiny_test_set.labels[abnormal]
        oracle = perturbation_curve(OracleExplainer(), tiny_classifier, x, y,
                                    n_patches=6, patch=3)
        constant = perturbation_curve(ConstantExplainer(), tiny_classifier,
                                      x, y, n_patches=6, patch=3)
        assert oracle.aopc > constant.aopc

    def test_evaluate_methods_keys(self, tiny_classifier, tiny_test_set):
        explainers = {"gradcam": GradCAMExplainer(tiny_classifier)}
        curves = evaluate_methods(explainers, tiny_classifier,
                                  tiny_test_set.images[:2],
                                  tiny_test_set.labels[:2],
                                  n_patches=3)
        assert set(curves) == {"gradcam"}


class TestReassignment:
    def test_rate_bounds(self, tiny_cae, tiny_classifier, tiny_test_set):
        rate = class_reassignment_rate(tiny_cae, tiny_classifier,
                                       tiny_test_set, n_pairs=20)
        assert 0.0 <= rate <= 1.0

    def test_single_class_raises(self, tiny_cae, tiny_classifier,
                                 tiny_test_set):
        single = tiny_test_set.subset(tiny_test_set.indices_of_class(0))
        with pytest.raises(ValueError):
            class_reassignment_rate(tiny_cae, tiny_classifier, single)


class TestSeparability:
    def test_separable_codes_score_high(self, rng):
        codes = np.vstack([rng.standard_normal((30, 8)),
                           rng.standard_normal((30, 8)) + 6])
        labels = np.repeat([0, 1], 30)
        mean, std = latent_separability(codes, labels, n_splits=5,
                                        n_estimators=10)
        assert mean > 0.9
        assert std >= 0

    def test_random_codes_score_low(self, rng):
        codes = rng.standard_normal((60, 8))
        labels = np.repeat([0, 1], 30)
        mean, __ = latent_separability(codes, labels, n_splits=5,
                                       n_estimators=10)
        assert mean < 0.8


class TestSmoothness:
    def test_smote_validity_keys_and_range(self, tiny_cae, tiny_manifold,
                                           tiny_classifier, tiny_test_set):
        __, is_code = tiny_cae.encode(tiny_test_set.images[0])
        rates = smote_validity(tiny_cae, tiny_manifold, tiny_classifier,
                               is_code, n_samples=10)
        assert set(rates) == {0, 1}
        assert all(0.0 <= r <= 1.0 for r in rates.values())

    def test_probe_path_shapes(self, tiny_cae, tiny_manifold,
                               tiny_classifier, tiny_test_set):
        __, is_code = tiny_cae.encode(tiny_test_set.images[0])
        probe = probe_path(tiny_cae, tiny_classifier,
                           tiny_manifold.centroid(0),
                           tiny_manifold.centroid(1), is_code,
                           target_label=1, steps=6)
        assert probe.probs.shape == (6,)
        assert probe.images.shape[0] == 6
        assert 0.0 <= probe.monotonicity <= 1.0

    def test_monotonicity_of_monotone_series(self):
        from repro.eval.smoothness import PathProbe
        probe = PathProbe(np.array([0.1, 0.5, 0.9]), np.zeros((3, 1, 2, 2)))
        assert probe.monotonicity == 1.0
        assert probe.total_rise == pytest.approx(0.8)

    def test_monotonicity_of_oscillating_series(self):
        from repro.eval.smoothness import PathProbe
        probe = PathProbe(np.array([0.5, 0.1, 0.9]), np.zeros((3, 1, 2, 2)))
        assert probe.monotonicity == 0.5


class TestLocalization:
    def test_pointing_game_hit_and_miss(self):
        mask = np.zeros((8, 8))
        mask[4, 4] = 1.0
        saliency_hit = np.zeros((8, 8))
        saliency_hit[4, 4] = 1.0
        saliency_miss = np.zeros((8, 8))
        saliency_miss[0, 0] = 1.0
        assert pointing_game(saliency_hit, mask) == 1.0
        assert pointing_game(saliency_miss, mask) == 0.0

    def test_pointing_game_tolerance(self):
        mask = np.zeros((8, 8))
        mask[4, 4] = 1.0
        saliency = np.zeros((8, 8))
        saliency[5, 5] = 1.0
        assert pointing_game(saliency, mask, tolerance=1) == 1.0
        assert pointing_game(saliency, mask, tolerance=0) == 0.0

    def test_saliency_iou_perfect(self):
        mask = np.zeros((10, 10))
        mask[:5] = 1.0
        assert saliency_iou(mask.copy(), mask, coverage=0.5) == 1.0

    def test_localization_scores(self, tiny_classifier, tiny_test_set):
        explainer = GradCAMExplainer(tiny_classifier)
        abnormal = tiny_test_set.indices_of_class(1)[:3]
        scores = localization_scores(
            explainer, tiny_test_set.images[abnormal],
            tiny_test_set.labels[abnormal], tiny_test_set.masks[abnormal])
        assert scores["n"] == 3
        assert 0.0 <= scores["pointing"] <= 1.0

    def test_localization_skips_empty_masks(self, tiny_classifier,
                                            tiny_test_set):
        explainer = GradCAMExplainer(tiny_classifier)
        normal = tiny_test_set.indices_of_class(0)[:2]
        scores = localization_scores(
            explainer, tiny_test_set.images[normal],
            tiny_test_set.labels[normal], tiny_test_set.masks[normal])
        assert scores["n"] == 0


class TestTiming:
    def test_saliency_time_positive(self, tiny_classifier, tiny_test_set):
        explainer = GradCAMExplainer(tiny_classifier)
        ms = saliency_time_ms(explainer, tiny_test_set.images[:3],
                              tiny_test_set.labels[:3])
        assert ms > 0

    def test_time_all_methods(self, tiny_classifier, tiny_test_set):
        times = time_all_methods({"gradcam": GradCAMExplainer(tiny_classifier)},
                                 tiny_test_set.images, tiny_test_set.labels,
                                 n_images=2)
        assert set(times) == {"gradcam"}

    def test_time_all_methods_batched(self, tiny_classifier, tiny_test_set):
        from repro.eval import time_all_methods_batched
        times = time_all_methods_batched(
            {"gradcam": GradCAMExplainer(tiny_classifier)},
            tiny_test_set.images, tiny_test_set.labels, n_images=4,
            batch_size=4)
        timing = times["gradcam"]
        assert timing.per_image_ms > 0
        assert timing.batched_ms > 0
        assert timing.speedup == pytest.approx(
            timing.per_image_ms / timing.batched_ms)


class TestTraps:
    def test_decision_surface_has_flip_region(self):
        x = np.linspace(-2, 4, 50)
        probs = decision_surface(x, np.zeros_like(x))
        assert probs[0] > 0.5       # start in class A
        assert probs[-1] < 0.5      # flip region toward +x

    def test_gradient_path_gets_trapped(self):
        trace = gradient_descent_path((-1.2, 1.0))
        assert not trace.flipped    # the paper's Fig 1 point ①

    def test_guided_path_flips(self):
        trace = guided_path((-1.2, 1.0))
        assert trace.flipped        # the paper's Fig 1 point ④⑤

    def test_greedy_walk_monotone_probs(self):
        trace = greedy_walk_path((-1.2, 1.0),
                                 rng=np.random.default_rng(0))
        assert np.all(np.diff(trace.probs) <= 1e-12)

    def test_trap_demo_bundle(self):
        demo = trap_demo_2d()
        assert set(demo) == {"gradient", "greedy_walk", "guided"}
        assert demo["guided"].flipped

    def test_path_length_positive(self):
        trace = guided_path((-1.2, 1.0), steps=10)
        assert trace.length > 0

    def test_false_positive_case_structure(self, tiny_classifier,
                                           tiny_test_set):
        idx = tiny_test_set.indices_of_class(1)[0]
        image = tiny_test_set.images[idx]
        mask = tiny_test_set.masks[idx]
        fake_saliency = np.random.default_rng(0).random(mask.shape)
        case = false_positive_case(tiny_classifier, image, 1, mask,
                                   fake_saliency)
        assert set(case) == {"false_positive", "true_positive", "both"}
        for entry in case.values():
            assert "drop" in entry
            assert "flipped" in entry
            assert entry["area"] >= 0
