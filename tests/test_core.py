"""Unit tests for the CAE core: networks, losses, BBCFE, manifold, model."""

import numpy as np
import pytest

from repro import nn
from repro.config import LossWeights, ReproConfig
from repro.core import (CAEModel, CAETrainer, ClassAssociatedManifold,
                        Decoder, Discriminator, Encoder, PairSampler,
                        train_cae)
from repro.core import losses as L
from repro.core.bbcfe import discriminator_step, generator_step
from repro.data import ImageDataset


SIZE = 16
BASE = 8


@pytest.fixture()
def encoder():
    return Encoder(1, BASE, cs_dim=8, image_size=SIZE, seed=0)


@pytest.fixture()
def decoder():
    return Decoder(1, BASE, cs_dim=8, image_size=SIZE, seed=1)


@pytest.fixture()
def discriminator():
    return Discriminator(1, BASE, num_classes=2, seed=2)


class TestNetworks:
    def test_encoder_code_shapes(self, encoder, rng):
        x = nn.Tensor(rng.random((3, 1, SIZE, SIZE)))
        cs, is_code = encoder(x)
        assert cs.shape == (3, 8)
        assert is_code.shape == (3, BASE * 2, SIZE // 4, SIZE // 4)

    def test_encoder_heads_match_forward(self, encoder, rng):
        x = nn.Tensor(rng.random((2, 1, SIZE, SIZE)))
        cs, is_code = encoder(x)
        assert np.allclose(encoder.encode_class(x).data, cs.data)
        assert np.allclose(encoder.encode_individual(x).data, is_code.data)

    def test_decoder_output_shape_and_range(self, decoder, rng):
        cs = nn.Tensor(rng.standard_normal((3, 8)))
        is_code = nn.Tensor(rng.standard_normal((3, BASE * 2, SIZE // 4,
                                                 SIZE // 4)))
        out = decoder(cs, is_code)
        assert out.shape == (3, 1, SIZE, SIZE)
        assert out.data.min() >= 0.0
        assert out.data.max() <= 1.0

    def test_decoder_depends_on_cs_code(self, decoder, rng):
        is_code = nn.Tensor(rng.standard_normal((1, BASE * 2, SIZE // 4,
                                                 SIZE // 4)))
        a = decoder(nn.Tensor(rng.standard_normal((1, 8))), is_code).data
        b = decoder(nn.Tensor(rng.standard_normal((1, 8))), is_code).data
        assert not np.allclose(a, b)

    def test_discriminator_head_shapes(self, discriminator, rng):
        x = nn.Tensor(rng.random((4, 1, SIZE, SIZE)))
        dr, dc = discriminator(x)
        assert dr.shape == (4, 2)
        assert dc.shape == (4, 2)


class TestLossEquations:
    def test_recon_losses_zero_for_identical(self, rng):
        a = nn.Tensor(rng.random((2, 3)))
        assert L.recon_class_code_loss(a, a).item() == 0.0
        assert L.recon_image_loss(a, a).item() == 0.0

    def test_cyclic_loss_positive_for_different(self, rng):
        a = nn.Tensor(rng.random((2, 4)))
        b = nn.Tensor(rng.random((2, 4)))
        assert L.cyclic_loss(a, b).item() > 0

    def test_generator_adv_wants_real(self):
        fake_scored_real = nn.Tensor(np.array([[0.0, 50.0]]))
        fake_scored_fake = nn.Tensor(np.array([[50.0, 0.0]]))
        assert L.generator_adversarial_loss(fake_scored_real).item() < \
            L.generator_adversarial_loss(fake_scored_fake).item()

    def test_discriminator_adv_wants_split(self):
        good_fake = nn.Tensor(np.array([[50.0, 0.0]]))   # scored fake
        good_real = nn.Tensor(np.array([[0.0, 50.0]]))   # scored real
        low = L.discriminator_adversarial_loss(good_fake, good_real).item()
        high = L.discriminator_adversarial_loss(good_real, good_fake).item()
        assert low < high

    def test_classification_losses_use_labels(self):
        logits = nn.Tensor(np.array([[10.0, -10.0]]))
        right = L.generator_classification_loss(logits, np.array([0])).item()
        wrong = L.generator_classification_loss(logits, np.array([1])).item()
        assert right < wrong
        assert L.discriminator_classification_loss(
            logits, np.array([0])).item() == pytest.approx(right)


class TestPairSampler:
    def _dataset(self, labels):
        labels = np.asarray(labels)
        return ImageDataset(np.random.default_rng(0).random(
            (len(labels), 1, SIZE, SIZE)), labels)

    def test_pairs_always_cross_class(self, rng):
        sampler = PairSampler(self._dataset([0] * 5 + [1] * 5), rng=rng)
        __, y_a, __, y_b = sampler.sample(32)
        assert np.all(y_a != y_b)

    def test_multiclass_pairs_cross_class(self, rng):
        sampler = PairSampler(self._dataset([0, 0, 1, 1, 2, 2, 3, 3]),
                              rng=rng)
        __, y_a, __, y_b = sampler.sample(64)
        assert np.all(y_a != y_b)

    def test_single_class_raises(self, rng):
        with pytest.raises(ValueError):
            PairSampler(self._dataset([0, 0, 0]), rng=rng)


class TestBBCFESteps:
    def _pair_batch(self, rng, n=2):
        x_a = rng.random((n, 1, SIZE, SIZE))
        x_b = rng.random((n, 1, SIZE, SIZE))
        return x_a, np.zeros(n, dtype=int), x_b, np.ones(n, dtype=int)

    def test_generator_step_components(self, encoder, decoder,
                                       discriminator, rng):
        x_a, y_a, x_b, y_b = self._pair_batch(rng)
        loss, parts = generator_step(encoder, decoder, discriminator,
                                     x_a, y_a, x_b, y_b, LossWeights())
        for key in ("recon_image", "recon_cs", "recon_is", "cyclic",
                    "adv_gen", "cls_gen", "total_gen"):
            assert key in parts
            assert np.isfinite(parts[key]) if not isinstance(
                parts[key], np.ndarray) else True
        assert parts["fake_a"].shape == x_a.shape

    def test_generator_step_produces_gradients(self, encoder, decoder,
                                               discriminator, rng):
        x_a, y_a, x_b, y_b = self._pair_batch(rng)
        loss, __ = generator_step(encoder, decoder, discriminator,
                                  x_a, y_a, x_b, y_b, LossWeights())
        loss.backward()
        grads = [p.grad for p in encoder.parameters()]
        assert any(g is not None and np.abs(g).max() > 0 for g in grads)

    def test_discriminator_step_gradients(self, discriminator, rng):
        x_a, y_a, x_b, y_b = self._pair_batch(rng)
        fake = rng.random(x_a.shape)
        loss, parts = discriminator_step(discriminator, x_a, y_a, x_b, y_b,
                                         fake, fake, LossWeights())
        loss.backward()
        grads = [p.grad for p in discriminator.parameters()]
        assert any(g is not None and np.abs(g).max() > 0 for g in grads)
        assert parts["total_disc"] == pytest.approx(loss.item())

    def test_weights_scale_objective(self, encoder, decoder,
                                     discriminator, rng):
        x_a, y_a, x_b, y_b = self._pair_batch(rng)
        small, __ = generator_step(encoder, decoder, discriminator, x_a, y_a,
                                   x_b, y_b, LossWeights(lambda1=1.0))
        big, __ = generator_step(encoder, decoder, discriminator, x_a, y_a,
                                 x_b, y_b, LossWeights(lambda1=100.0))
        assert big.item() > small.item()


class TestManifold:
    def _manifold(self, rng):
        codes = np.vstack([rng.standard_normal((10, 8)),
                           rng.standard_normal((10, 8)) + 5.0])
        labels = np.repeat([0, 1], 10)
        return ClassAssociatedManifold(codes, labels)

    def test_centroids(self, rng):
        m = self._manifold(rng)
        assert m.centroid(1).mean() > m.centroid(0).mean()

    def test_counter_classes(self, rng):
        m = self._manifold(rng)
        assert m.counter_classes(0) == (1,)

    def test_plan_path_endpoints(self, rng):
        m = self._manifold(rng)
        code = m.codes[0]
        path = m.plan_path(code, 0, 1, steps=5)
        assert path.steps == 5
        assert np.allclose(path.codes[0], code)
        # destination is an actual class-1 bank code
        bank = m.codes_of_class(1)
        assert any(np.allclose(path.codes[-1], c) for c in bank)

    def test_plan_path_centroid_endpoint(self, rng):
        m = self._manifold(rng)
        path = m.plan_path(m.codes[0], 0, 1, steps=3, endpoint="centroid")
        assert np.allclose(path.codes[-1], m.centroid(1))

    def test_plan_path_bad_endpoint_raises(self, rng):
        with pytest.raises(ValueError):
            self._manifold(rng).plan_path(np.zeros(8), 0, 1,
                                          endpoint="bogus")

    def test_nearest_counter_code_is_nearest(self, rng):
        m = self._manifold(rng)
        code = m.codes[0]
        nearest = m.nearest_counter_code(code, 1)
        bank = m.codes_of_class(1)
        dists = ((bank - code) ** 2).sum(axis=1)
        assert np.allclose(nearest, bank[dists.argmin()])

    def test_interpolate_endpoints(self, rng):
        m = self._manifold(rng)
        codes = m.interpolate(np.zeros(8), np.ones(8), steps=4)
        assert np.allclose(codes[0], 0.0)
        assert np.allclose(codes[-1], 1.0)

    def test_smote_codes_shape(self, rng):
        m = self._manifold(rng)
        samples = m.smote_codes(0, 25, rng=rng)
        assert samples.shape == (25, 8)

    def test_separation_score_ordering(self, rng):
        separated = self._manifold(rng)
        mixed = ClassAssociatedManifold(rng.standard_normal((20, 8)),
                                        np.repeat([0, 1], 10))
        assert separated.separation_score() > mixed.separation_score()

    def test_projection_shapes(self, rng):
        m = self._manifold(rng)
        assert m.project("pca").shape == (20, 2)
        extra = rng.standard_normal((5, 8))
        assert m.project("pca", extra_codes=extra).shape == (25, 2)

    def test_projection_bad_method_raises(self, rng):
        with pytest.raises(ValueError):
            self._manifold(rng).project("umap")

    def test_validation(self):
        with pytest.raises(ValueError):
            ClassAssociatedManifold(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            ClassAssociatedManifold(np.zeros((0, 2)), np.zeros(0))


class TestCAEModel:
    def test_encode_decode_shapes(self, tiny_cae, tiny_train_set):
        images = tiny_train_set.images[:3]
        cs, is_codes = tiny_cae.encode(images)
        assert cs.shape == (3, tiny_cae.config.cs_dim)
        decoded = tiny_cae.decode(cs, is_codes)
        assert decoded.shape == images.shape

    def test_encode_single_image(self, tiny_cae, tiny_train_set):
        cs, is_code = tiny_cae.encode(tiny_train_set.images[0])
        assert cs.shape[0] == 1

    def test_decode_broadcasts_is_code(self, tiny_cae, tiny_train_set):
        cs, is_codes = tiny_cae.encode(tiny_train_set.images[:4])
        out = tiny_cae.decode(cs, is_codes[:1])
        assert out.shape[0] == 4

    def test_decode_broadcasts_cs_code(self, tiny_cae, tiny_train_set):
        cs, is_codes = tiny_cae.encode(tiny_train_set.images[:4])
        out = tiny_cae.decode(cs[:1], is_codes)
        assert out.shape[0] == 4

    def test_swap_codes_shapes(self, tiny_cae, tiny_train_set):
        a = tiny_train_set.images[:2]
        b = tiny_train_set.images[2:4]
        fa, fb = tiny_cae.swap_codes(a, b)
        assert fa.shape == a.shape
        assert fb.shape == b.shape

    def test_reconstruction_better_than_noise(self, tiny_cae,
                                              tiny_train_set):
        images = tiny_train_set.images[:4]
        recon = tiny_cae.reconstruct(images)
        noise = np.random.default_rng(0).random(images.shape)
        assert np.abs(recon - images).mean() < np.abs(noise - images).mean()

    def test_build_manifold(self, tiny_cae, tiny_train_set):
        manifold = tiny_cae.build_manifold(tiny_train_set)
        assert len(manifold.codes) == len(tiny_train_set)
        assert manifold.classes == (0, 1)

    def test_save_load_roundtrip(self, tiny_cae, tiny_train_set, tmp_path,
                                 tiny_config):
        directory = str(tmp_path / "cae")
        tiny_cae.save(directory)
        fresh = CAEModel(num_classes=2, config=tiny_config)
        fresh.load(directory)
        images = tiny_train_set.images[:2]
        assert np.allclose(fresh.encode_class(images),
                           tiny_cae.encode_class(images))


class TestTrainer:
    def test_history_recorded(self, tiny_train_set, tiny_config):
        model = CAEModel(2, tiny_config)
        trainer = CAETrainer(model, tiny_config)
        history = trainer.fit(tiny_train_set, iterations=3, batch_size=2)
        assert len(history.steps) == 3
        assert history.wall_time > 0
        assert len(history.series("total_gen")) == 3

    def test_training_reduces_reconstruction(self, tiny_train_set,
                                             tiny_config):
        model = CAEModel(2, tiny_config)
        trainer = CAETrainer(model, tiny_config)
        history = trainer.fit(tiny_train_set, iterations=20, batch_size=4)
        first = np.mean(history.series("recon_image")[:4])
        last = np.mean(history.series("recon_image")[-4:])
        assert last < first

    def test_train_cae_convenience(self, tiny_train_set, tiny_config):
        model = train_cae(tiny_train_set, iterations=2, batch_size=2,
                          config=tiny_config)
        assert isinstance(model, CAEModel)
        assert not model.encoder.training   # left in eval mode
