"""Unit tests for the CAE explainer and all baseline explainers."""

import numpy as np
import pytest

from repro.explain import (CAEExplainer, FullGradExplainer, GradCAMExplainer,
                           ICAMExplainer, LAGANExplainer, LimeExplainer,
                           OcclusionExplainer, SaliencyResult,
                           SimpleFullGradExplainer, SmoothFullGradExplainer,
                           StylexExplainer, TABLE2_METHODS, TSCAMExplainer,
                           build_all_explainers, default_counter_label,
                           train_icam, train_lagan, train_stylex, train_tscam)


@pytest.fixture(scope="module")
def abnormal_image(tiny_train_set):
    idx = tiny_train_set.indices_of_class(1)[0]
    return tiny_train_set.images[idx]


def check_saliency(result, size=16):
    assert isinstance(result, SaliencyResult)
    assert result.saliency.shape == (size, size)
    assert np.isfinite(result.saliency).all()
    assert result.saliency.min() >= 0.0 or result.saliency.max() > 0.0


class TestSaliencyResult:
    def test_normalized_range(self, rng):
        result = SaliencyResult(rng.random((8, 8)) * 10, label=1)
        normed = result.normalized()
        assert normed.min() == pytest.approx(0.0)
        assert normed.max() == pytest.approx(1.0)

    def test_normalized_constant_map(self):
        result = SaliencyResult(np.ones((4, 4)), label=0)
        assert np.allclose(result.normalized(), 0.0)

    def test_top_pixels_ordering(self):
        saliency = np.zeros((4, 4))
        saliency[2, 3] = 5.0
        saliency[1, 1] = 3.0
        top = SaliencyResult(saliency, label=0).top_pixels(2)
        assert list(top[0]) == [2, 3]
        assert list(top[1]) == [1, 1]

    def test_default_counter_label(self):
        assert default_counter_label(2, 4) == 0
        assert default_counter_label(0, 4) == 1
        assert default_counter_label(0, 1) == 0


class TestGradientExplainers:
    def test_gradcam(self, tiny_classifier, abnormal_image):
        result = GradCAMExplainer(tiny_classifier).explain(abnormal_image, 1)
        check_saliency(result)
        assert result.saliency.min() >= 0.0      # ReLU'd CAM

    def test_fullgrad(self, tiny_classifier, abnormal_image):
        result = FullGradExplainer(tiny_classifier).explain(abnormal_image, 1)
        check_saliency(result)

    def test_simple_fullgrad(self, tiny_classifier, abnormal_image):
        result = SimpleFullGradExplainer(tiny_classifier).explain(
            abnormal_image, 1)
        check_saliency(result)

    def test_smooth_fullgrad_deterministic(self, tiny_classifier,
                                           abnormal_image):
        a = SmoothFullGradExplainer(tiny_classifier, n_samples=3,
                                    seed=1).explain(abnormal_image, 1)
        b = SmoothFullGradExplainer(tiny_classifier, n_samples=3,
                                    seed=1).explain(abnormal_image, 1)
        assert np.allclose(a.saliency, b.saliency)

    def test_gradcam_differs_across_labels(self, tiny_classifier,
                                           abnormal_image):
        explainer = GradCAMExplainer(tiny_classifier)
        a = explainer.explain(abnormal_image, 0).saliency
        b = explainer.explain(abnormal_image, 1).saliency
        assert not np.allclose(a, b)


class TestPerturbationExplainers:
    def test_lime(self, tiny_classifier, abnormal_image):
        explainer = LimeExplainer(tiny_classifier, grid=4, n_samples=40,
                                  seed=0)
        result = explainer.explain(abnormal_image, 1)
        check_saliency(result)
        assert "coef" in result.meta

    def test_lime_deterministic(self, tiny_classifier, abnormal_image):
        a = LimeExplainer(tiny_classifier, grid=4, n_samples=30,
                          seed=2).explain(abnormal_image, 1)
        b = LimeExplainer(tiny_classifier, grid=4, n_samples=30,
                          seed=2).explain(abnormal_image, 1)
        assert np.allclose(a.saliency, b.saliency)

    def test_lime_saliency_piecewise_constant(self, tiny_classifier,
                                              abnormal_image):
        result = LimeExplainer(tiny_classifier, grid=4, n_samples=30,
                               seed=0).explain(abnormal_image, 1)
        # 4x4 grid on 16x16 image -> 4x4 blocks of constant value
        block = result.saliency[:4, :4]
        assert np.allclose(block, block[0, 0])

    def test_occlusion(self, tiny_classifier, abnormal_image):
        result = OcclusionExplainer(tiny_classifier, window=4,
                                    stride=4).explain(abnormal_image, 1)
        check_saliency(result)
        assert "base_prob" in result.meta


class TestTrainedBaselines:
    def test_tscam(self, tiny_train_set, abnormal_image):
        model = train_tscam(tiny_train_set, epochs=1, dim=8)
        result = TSCAMExplainer(model).explain(abnormal_image, 1)
        check_saliency(result)

    def test_stylex(self, tiny_train_set, tiny_classifier, abnormal_image):
        autoencoder = train_stylex(tiny_train_set, tiny_classifier, epochs=1)
        explainer = StylexExplainer(autoencoder, tiny_classifier, steps=3)
        result = explainer.explain(abnormal_image, 1)
        check_saliency(result)
        assert "z_shift" in result.meta

    def test_lagan(self, tiny_train_set, tiny_classifier, abnormal_image):
        mask_gen = train_lagan(tiny_train_set, tiny_classifier, epochs=1)
        result = LAGANExplainer(mask_gen, tiny_classifier).explain(
            abnormal_image, 1)
        check_saliency(result)
        assert result.saliency.max() <= 1.0   # sigmoid mask

    def test_icam(self, tiny_train_set, tiny_config, abnormal_image):
        model = train_icam(tiny_train_set, iterations=3, batch_size=2,
                           config=tiny_config)
        manifold = model.build_manifold(tiny_train_set)
        result = ICAMExplainer(model, manifold, 2).explain(abnormal_image, 1)
        check_saliency(result)

    def test_icam_encode_attribute(self, tiny_train_set, tiny_config):
        model = train_icam(tiny_train_set, iterations=2, batch_size=2,
                           config=tiny_config)
        codes = model.encode_attribute(tiny_train_set.images[:3])
        assert codes.shape == (3, tiny_config.cs_dim)


class TestCAEExplainer:
    @pytest.fixture()
    def explainer(self, tiny_cae, tiny_manifold, tiny_classifier):
        return CAEExplainer(tiny_cae, tiny_manifold, tiny_classifier,
                            steps=5)

    def test_explain(self, explainer, abnormal_image):
        result = explainer.explain(abnormal_image, 1, 0)
        check_saliency(result)
        assert result.target_label == 0
        assert result.meta["series_len"] >= 2

    def test_generate_series_shapes(self, explainer, abnormal_image):
        series, probs = explainer.generate_series(abnormal_image, 1, 0)
        assert series.shape[1:] == abnormal_image.shape
        assert len(probs) == len(series)

    def test_default_target_is_normal(self, explainer, abnormal_image):
        result = explainer.explain(abnormal_image, 1)
        assert result.target_label == 0

    def test_explain_all_counters(self, explainer, abnormal_image):
        results = explainer.explain_all_counters(abnormal_image, 1)
        assert len(results) == 1    # binary dataset: one counter class
        assert results[0].target_label == 0

    def test_centroid_endpoint_mode(self, tiny_cae, tiny_manifold,
                                    tiny_classifier, abnormal_image):
        explainer = CAEExplainer(tiny_cae, tiny_manifold, tiny_classifier,
                                 steps=4, endpoint="centroid")
        check_saliency(explainer.explain(abnormal_image, 1, 0))

    def test_explain_batch(self, explainer, tiny_train_set):
        images = tiny_train_set.images[:2]
        labels = tiny_train_set.labels[:2]
        results = explainer.explain_batch(images, labels)
        assert len(results) == 2


class TestRegistry:
    def test_table2_method_list(self):
        assert len(TABLE2_METHODS) == 10
        assert TABLE2_METHODS[-1] == "cae"

    def test_build_subset(self, tiny_train_set, tiny_classifier,
                          tiny_config):
        suite = build_all_explainers(tiny_train_set, tiny_classifier,
                                     config=tiny_config,
                                     include=("gradcam", "lime"))
        assert set(suite.explainers) == {"gradcam", "lime"}

    def test_build_with_trained_models(self, tiny_train_set, tiny_classifier,
                                       tiny_config):
        suite = build_all_explainers(
            tiny_train_set, tiny_classifier, config=tiny_config,
            cae_iterations=2, aux_epochs=1,
            include=("cae", "lagan"))
        assert "cae" in suite.explainers
        assert suite.cae_model is not None
        assert suite.training_times["cae"] > 0
        assert suite["lagan"] is suite.explainers["lagan"]
