"""Gender-attribute transfer on synthetic face portraits.

The paper's generalisation experiment: on the Human Face dataset, CS
codes carry gender-associated features (beards, eyebrow thickness, lip
darkness) while IS codes carry identity (geometry, expression, glasses).
Swapping CS codes transfers the perceived gender while preserving
identity — the basis of Table IV's 98.5% swap success on faces.

Usage::

    python examples/face_attribute_transfer.py
"""

import numpy as np

from repro.config import ReproConfig
from repro.classifiers import train_classifier
from repro.core import train_cae
from repro.data import make_dataset


def main() -> None:
    print("training on synthetic faces (gender classification) ...")
    train = make_dataset("face", "train", image_size=32, seed=0,
                         counts={0: 50, 1: 50})
    test = make_dataset("face", "test", image_size=32, seed=0,
                        counts={0: 15, 1: 15})
    classifier = train_classifier(train, epochs=6, width=12)
    print(f"gender classifier test accuracy: "
          f"{(classifier.predict(test.images) == test.labels).mean():.3f}")

    cae = train_cae(train, iterations=200, batch_size=6,
                    config=ReproConfig(base_channels=8), verbose=True)

    females = test.images[test.labels == 0][:8]
    males = test.images[test.labels == 1][:8]

    # Swap CS codes in both directions.
    female_id_male_attr, male_id_female_attr = cae.swap_codes(males, females)
    # swap_codes(a=males, b=females) returns
    #   (G(c_female, s_male), G(c_male, s_female)).
    to_female = female_id_male_attr     # male identity, female attributes
    to_male = male_id_female_attr       # female identity, male attributes

    pred_to_female = classifier.predict(to_female)
    pred_to_male = classifier.predict(to_male)
    print(f"male identity + female CS  -> classified female: "
          f"{(pred_to_female == 0).mean():.1%}")
    print(f"female identity + male CS  -> classified male:   "
          f"{(pred_to_male == 1).mean():.1%}")

    # Identity preservation: the synthetic face stays closer to its IS
    # donor than to its CS donor.
    d_identity = np.abs(to_male - females).mean()
    d_attribute = np.abs(to_male - males).mean()
    print(f"pixel distance to identity donor:  {d_identity:.4f}")
    print(f"pixel distance to attribute donor: {d_attribute:.4f}")
    print("identity preserved!" if d_identity < d_attribute
          else "identity NOT preserved — train longer")


if __name__ == "__main__":
    main()
