"""One admission-controlled engine fronting two datasets of different
image sizes.

The serving runtime's queues key on ``(method, image_shape)`` and its
cache keys on content digests, so a single :class:`ExplainEngine` can
front *multiple* :class:`ExperimentContext`s at once: here a 16x16
brain-tumor deployment and a 24x24 chest-X-ray deployment register
their explainers under namespaced method names (``brain:gradcam``,
``chest:occlusion``, ...) on one engine.  Mixed traffic from both test
sets then shares one admission bound (``max_pending``), one cost-aware
cache, and per-queue adaptive batch limits — and a 24x24 batch never
stacks into a 16x16 one.

Executor choice rides the same engine: ``--executor process`` serves
the mixed traffic from persistent worker *processes* — the module-level
:func:`build_multi_explainers` doubles as the worker-side
:class:`~repro.serve.EngineSpec` factory, so every worker rebuilds both
contexts' classifiers from the disk cache the first run populated.

With ``--store DIR`` the engine adds the persistent tier: the first
invocation computes everything and writes the maps behind to ``DIR``;
run the same command again and the "restarted" engine serves the whole
trace from disk without touching either classifier — the warm-restart
story for deploys.

Usage::

    PYTHONPATH=src python examples/multi_dataset_serving.py
    PYTHONPATH=src python examples/multi_dataset_serving.py \
        --executor process --workers 2
    PYTHONPATH=src python examples/multi_dataset_serving.py \
        --store /tmp/saliency_store   # run twice: 2nd start is warm
"""

import argparse

import numpy as np

from repro.eval.pipeline import ExperimentContext, ExperimentScale
from repro.explain import GradCAMExplainer, OcclusionExplainer
from repro.serve import (EngineSpec, ExplainEngine, ProcessExecutor,
                         ThreadedExecutor)


def smoke_scale(image_size: int) -> ExperimentScale:
    return ExperimentScale(image_size=image_size, train_divisor=400,
                           classifier_epochs=3, classifier_width=8,
                           cae_iterations=30, aux_epochs=1,
                           min_train_per_class=24, min_test_per_class=8)


def make_contexts() -> dict:
    return {
        "brain": ExperimentContext("brain_tumor1", scale=smoke_scale(16)),
        "chest": ExperimentContext("chest_xray", scale=smoke_scale(24)),
    }


def build_multi_explainers(contexts: dict = None) -> dict:
    """Namespaced explainers over both deployments' classifiers.

    Module-level on purpose: it is also the :class:`EngineSpec` factory
    for ``--executor process``, so each worker process materializes the
    same two classifiers (loaded from the shared ``.repro_cache``) and
    serves ``brain:*`` and ``chest:*`` batches interchangeably.  The
    parent passes its already-built contexts; workers (calling with no
    arguments) rebuild their own.
    """
    explainers = {}
    for tag, ctx in (contexts or make_contexts()).items():
        clf = ctx.classifier
        explainers[f"{tag}:gradcam"] = GradCAMExplainer(clf)
        explainers[f"{tag}:occlusion"] = OcclusionExplainer(
            clf, window=4, stride=2)
    return explainers


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--executor", default="threaded",
                        choices=("serial", "threaded", "process"))
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent saliency-store directory; rerun "
                        "with the same DIR to start warm (tier-2 hits "
                        "instead of recompute)")
    args = parser.parse_args()

    contexts = make_contexts()
    # Warm the disk cache before any worker process could need it.
    for tag, ctx in contexts.items():
        print(f"preparing {tag} context "
              f"({ctx.scale.image_size}x{ctx.scale.image_size}) ...")
        ctx.classifier

    # One engine, two deployments: each context contributes its own
    # trained classifier's explainers under namespaced method names.
    # (The engine's classifier slot goes unused — explainers hold their
    # own models — so a multi-model engine passes None.)
    explainers = build_multi_explainers(contexts)
    if args.executor == "process":
        executor = ProcessExecutor(EngineSpec(build_multi_explainers),
                                   workers=args.workers)
    elif args.executor == "threaded":
        executor = ThreadedExecutor(workers=args.workers)
    else:
        executor = "serial"

    engine = ExplainEngine(
        None, explainers,
        max_batch=16, min_batch=2, target_batch_ms=100.0,  # adaptive
        cache_size=256, cache_shards=4, eviction="cost",
        max_pending=32, policy="block",                    # backpressure
        executor=executor,
        store=args.store)                                  # tier 2 (opt.)
    print(f"serving on executor={engine.stats()['executor']}"
          + (f", store={args.store}" if args.store else ""))

    # Interleave async traffic from both deployments: requests from the
    # two image sizes land on independent shape-keyed queues, while the
    # admission bound caps how much unresolved work the producer can
    # pile up ahead of the workers.
    with engine:
        handles = []
        for tag, ctx in contexts.items():
            images, labels, _ = ctx.sample_test_images(8, seed=0)
            for method in ("gradcam", "occlusion"):
                for image, label in zip(images, labels):
                    handles.append(
                        engine.submit_async(image, int(label),
                                            f"{tag}:{method}"))
        resolved = engine.drain()
        print(f"\ncold pass: {resolved} handles resolved")

        shapes = {h.result().saliency.shape for h in handles}
        print(f"saliency shapes served side by side: {sorted(shapes)}")
        assert shapes == {(16, 16), (24, 24)}

        stats = engine.stats()
        print(f"batches: {stats['batches_run']}  "
              f"adaptive limits: {stats['batch_limits']}")
        print(f"admission: {stats['admission_blocked']} submits blocked "
              f"{stats['admission_blocked_ms']:.0f} ms total "
              f"(policy={stats['admission_policy']}, "
              f"max_pending={stats['max_pending']})")

        # Warm pass: the same mixed traffic is served from the shared
        # cost-aware cache without touching either classifier.
        before = stats["batches_run"]
        for tag, ctx in contexts.items():
            images, labels, _ = ctx.sample_test_images(8, seed=0)
            for method in ("gradcam", "occlusion"):
                for image, label in zip(images, labels):
                    engine.submit_async(image, int(label),
                                        f"{tag}:{method}")
        engine.drain()
        stats = engine.stats()
        print(f"\nwarm pass: {stats['cache_hits']} cache hits, "
              f"{stats['batches_run'] - before} new batches")
        print(f"cache: size {stats['cache_size']} over "
              f"{stats['cache_shards']} shards "
              f"(eviction={stats['eviction']})")
        if args.store:
            store = stats["store"]
            print(f"store: {stats['store_served']} requests served from "
                  f"disk this run; {store['entries']} entries "
                  f"({store['bytes'] / 1024:.0f} KiB) persisted with "
                  "their GDSF costs — rerun with the same --store and "
                  "the cold pass above disappears")
    print("\nengine closed (drained first: no handle left behind)")


if __name__ == "__main__":
    main()
