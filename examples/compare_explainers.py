"""Head-to-head explainer comparison on the chest X-ray task.

Miniature version of the paper's Table II protocol: train the full
explainer suite (CAE + nine baselines), then score every method with the
AOPC/PD perturbation metric and against the synthetic ground-truth
opacity masks.

Usage::

    python examples/compare_explainers.py
"""

import numpy as np

from repro.config import ReproConfig
from repro.classifiers import train_classifier
from repro.data import make_dataset
from repro.eval import evaluate_methods
from repro.eval.localization import pointing_game, saliency_iou
from repro.explain import TABLE2_METHODS, build_all_explainers
from repro.serve import ExplainEngine


def main() -> None:
    print("training classifier and explainer suite on chest X-rays ...")
    train = make_dataset("chest_xray", "train", image_size=32, seed=0,
                         counts={0: 30, 1: 60})
    test = make_dataset("chest_xray", "test", image_size=32, seed=0,
                        counts={0: 10, 1: 16})
    classifier = train_classifier(train, epochs=6, width=12)
    print(f"classifier test accuracy: "
          f"{(classifier.predict(test.images) == test.labels).mean():.3f}")

    suite = build_all_explainers(train, classifier,
                                 config=ReproConfig(base_channels=8),
                                 cae_iterations=150, aux_epochs=2)

    abnormal = test.indices_of_class(1)[:5]
    images = test.images[abnormal]
    labels = test.labels[abnormal]
    masks = test.masks[abnormal]

    print("\nscoring saliency maps (AOPC/PD + ground-truth localisation)")
    # Both metric layers consume the serving runtime: the AOPC sweep
    # populates the sharded saliency cache, so the localisation pass
    # below re-requests the same (image, method) maps and is served
    # almost entirely from cache — visible in the stats line at the end.
    engine = ExplainEngine(classifier, suite.explainers, max_batch=8,
                           cache_size=256, cache_shards=4)
    curves = evaluate_methods(suite.explainers, classifier, images, labels,
                              n_patches=12, patch=3, engine=engine)

    header = f"{'method':18s} {'AOPC':>6s} {'PD':>6s} {'IoU':>6s} {'point':>6s}"
    print("\n" + header)
    print("-" * len(header))
    for name in TABLE2_METHODS:
        if name not in curves:
            continue
        results = engine.explain_batch(images, labels, name)
        ious = [saliency_iou(r.saliency, mask)
                for r, mask in zip(results, masks)]
        points = [pointing_game(r.saliency, mask)
                  for r, mask in zip(results, masks)]
        marker = "  <- ours" if name == "cae" else ""
        print(f"{name:18s} {curves[name].aopc:6.3f} {curves[name].pd:6.3f} "
              f"{np.mean(ious):6.3f} {np.mean(points):6.2f}{marker}")
    print(f"\nserving stats: {engine.stats()}")


if __name__ == "__main__":
    main()
