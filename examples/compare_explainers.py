"""Head-to-head explainer comparison on the chest X-ray task.

Miniature version of the paper's Table II protocol: train the full
explainer suite (CAE + nine baselines), then score every method with the
AOPC/PD perturbation metric and against the synthetic ground-truth
opacity masks.

Usage::

    python examples/compare_explainers.py
"""

import numpy as np

from repro.config import ReproConfig
from repro.classifiers import train_classifier
from repro.data import make_dataset
from repro.eval import evaluate_methods
from repro.eval.localization import pointing_game, saliency_iou
from repro.explain import TABLE2_METHODS, build_all_explainers


def main() -> None:
    print("training classifier and explainer suite on chest X-rays ...")
    train = make_dataset("chest_xray", "train", image_size=32, seed=0,
                         counts={0: 30, 1: 60})
    test = make_dataset("chest_xray", "test", image_size=32, seed=0,
                        counts={0: 10, 1: 16})
    classifier = train_classifier(train, epochs=6, width=12)
    print(f"classifier test accuracy: "
          f"{(classifier.predict(test.images) == test.labels).mean():.3f}")

    suite = build_all_explainers(train, classifier,
                                 config=ReproConfig(base_channels=8),
                                 cae_iterations=150, aux_epochs=2)

    abnormal = test.indices_of_class(1)[:5]
    images = test.images[abnormal]
    labels = test.labels[abnormal]
    masks = test.masks[abnormal]

    print("\nscoring saliency maps (AOPC/PD + ground-truth localisation)")
    curves = evaluate_methods(suite.explainers, classifier, images, labels,
                              n_patches=12, patch=3)

    header = f"{'method':18s} {'AOPC':>6s} {'PD':>6s} {'IoU':>6s} {'point':>6s}"
    print("\n" + header)
    print("-" * len(header))
    for name in TABLE2_METHODS:
        if name not in curves:
            continue
        explainer = suite[name]
        ious, points = [], []
        for image, label, mask in zip(images, labels, masks):
            result = explainer.explain(image, int(label))
            ious.append(saliency_iou(result.saliency, mask))
            points.append(pointing_game(result.saliency, mask))
        marker = "  <- ours" if name == "cae" else ""
        print(f"{name:18s} {curves[name].aopc:6.3f} {curves[name].pd:6.3f} "
              f"{np.mean(ious):6.3f} {np.mean(points):6.2f}{marker}")


if __name__ == "__main__":
    main()
