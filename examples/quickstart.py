"""Quickstart: train a CAE and explain a black-box classifier.

Runs the full pipeline on a small synthetic brain-tumor dataset in a
couple of minutes on CPU:

1. generate data;
2. train the black-box classifier;
3. BBCFE-train the Class Association Embedding;
4. explain a test image with guided counterfactual generation;
5. print the saliency map as ASCII art next to the ground-truth lesion.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.config import ReproConfig
from repro.classifiers import train_classifier
from repro.core import train_cae
from repro.data import make_dataset
from repro.explain import CAEExplainer


def ascii_map(values: np.ndarray, width: int = 2) -> str:
    """Render a [0, 1] map as ASCII shading."""
    shades = " .:-=+*#%@"
    idx = (np.clip(values, 0, 1) * (len(shades) - 1)).astype(int)
    return "\n".join("".join(shades[v] * width for v in row) for row in idx)


def main() -> None:
    print("1) generating synthetic brain-tumor data ...")
    train = make_dataset("brain_tumor1", "train", image_size=32, seed=0,
                         counts={0: 40, 1: 40})
    test = make_dataset("brain_tumor1", "test", image_size=32, seed=0,
                        counts={0: 10, 1: 10})

    print("2) training the black-box classifier ...")
    classifier = train_classifier(train, epochs=6, width=12, verbose=True)
    accuracy = float((classifier.predict(test.images) == test.labels).mean())
    print(f"   test accuracy: {accuracy:.3f}")

    print("3) BBCFE-training the Class Association Embedding ...")
    config = ReproConfig(base_channels=8)
    cae = train_cae(train, iterations=150, batch_size=6, config=config,
                    verbose=True)

    print("4) explaining one abnormal test image ...")
    manifold = cae.build_manifold(train)
    explainer = CAEExplainer(cae, manifold, classifier, steps=8)
    idx = test.indices_of_class(1)[0]
    image, mask = test.images[idx], test.masks[idx]
    result = explainer.explain(image, 1, target_label=0)
    print(f"   classifier prob along the guided path: "
          f"{np.round(result.meta['probs'], 3)}")

    print("\nimage (tumor slice)          saliency (CAE)               "
          "ground-truth lesion")
    img_rows = ascii_map(image[0]).split("\n")
    sal_rows = ascii_map(result.normalized()).split("\n")
    mask_rows = ascii_map(mask).split("\n")
    for a, b, c in zip(img_rows, sal_rows, mask_rows):
        print(f"{a}  {b}  {c}")


if __name__ == "__main__":
    main()
