"""Knowledge discovery on the OCT class-associated manifold.

Reproduces the paper's Section IV.F.4 exploration: learn the manifold on
the four-class retinal OCT task, then

* project it to 2-D and measure per-class separation;
* test the medical-knowledge alignment the paper highlights — DRUSEN
  sits adjacent to the NORMAL -> CNV transition path (drusen may
  develop into CNV);
* drag one normal sample's CS code toward each disease and watch the
  classifier's probabilities evolve along the path.

Usage::

    python examples/oct_knowledge_discovery.py
"""

import numpy as np

from repro.config import ReproConfig
from repro.classifiers import train_classifier
from repro.core import train_cae
from repro.data import make_dataset
from repro.eval import probe_path


def main() -> None:
    print("training on 4-class synthetic OCT ...")
    train = make_dataset("oct", "train", image_size=32, seed=0,
                         counts={0: 30, 1: 30, 2: 30, 3: 30})
    test = make_dataset("oct", "test", image_size=32, seed=0,
                        counts={0: 8, 1: 8, 2: 8, 3: 8})
    classifier = train_classifier(train, epochs=6, width=12)
    print(f"classifier test accuracy: "
          f"{(classifier.predict(test.images) == test.labels).mean():.3f}")

    cae = train_cae(train, iterations=200, batch_size=6,
                    config=ReproConfig(base_channels=8), verbose=True)
    manifold = cae.build_manifold(train)

    print("\n-- manifold geometry --")
    print(f"class separation score: {manifold.separation_score():.3f}")
    xy = manifold.project("pca")
    for label in manifold.classes:
        pts = xy[manifold.labels == label]
        print(f"  {train.class_names[label]:8s} centre "
              f"({pts[:, 0].mean():+.2f}, {pts[:, 1].mean():+.2f})")

    # Medical-knowledge check: DRUSEN adjacent to the NORMAL->CNV path.
    normal_c = manifold.centroid(0)
    cnv_c = manifold.centroid(1)
    drusen_c = manifold.centroid(3)
    dme_c = manifold.centroid(2)

    def dist_to_path(point):
        v = cnv_c - normal_c
        t = np.clip(np.dot(point - normal_c, v) / np.dot(v, v), 0, 1)
        return float(np.linalg.norm(point - (normal_c + t * v)))

    print("\n-- distance of disease centroids to the NORMAL->CNV path --")
    print(f"  DRUSEN: {dist_to_path(drusen_c):.3f}   (paper: adjacent — "
          "drusen may develop into CNV)")
    print(f"  DME:    {dist_to_path(dme_c):.3f}")

    # Path exploration from one normal exemplar toward each disease.
    idx = test.indices_of_class(0)[0]
    cs, is_code = cae.encode(test.images[idx][None])
    print("\n-- dragging the exemplar's CS code toward each disease --")
    for target in (1, 2, 3):
        probe = probe_path(cae, classifier, cs[0],
                           manifold.centroid(target), is_code,
                           target_label=target, steps=8)
        print(f"  -> {train.class_names[target]:8s} "
              f"target prob {probe.probs[0]:.3f} -> {probe.probs[-1]:.3f} "
              f"(monotonicity {probe.monotonicity:.2f})")


if __name__ == "__main__":
    main()
